//! The HTTP campaign service: accept loop, worker pool, routing.
//!
//! ## Endpoints
//!
//! | Method + path | Meaning |
//! |---|---|
//! | `POST /runs` | submit a grid (`{"scenarios":[…],"reps":N,"seed":S}` or `{"campaign":"mini","mode":"quick","seed":S}`) |
//! | `GET /runs/:id` | job status + progress + live per-point statistics and throughput |
//! | `GET /runs/:id/results` | stream the JSONL records (grid order); `?format=summary` returns the JSON report document |
//! | `GET /runs/:id/events` | live event stream (SSE): per-trial telemetry + lifecycle, closes when the job settles |
//! | `GET /runs/:id/timeline` | the job's decimated progress timeline (JSONL), live while running |
//! | `DELETE /runs/:id` | cancel |
//! | `GET /trace?scenario=LABEL` | run one traced trial, stream the event log as JSONL (`&seed=S&cap=N` optional) |
//! | `GET /timeline?scenario=LABEL` | run one recorded trial, stream its flight-recorder timeline as JSONL (`&seed=S&budget=N` optional) |
//! | `GET /scenarios` | the scenario-label grammar (same text as `disp-campaign scenarios`) |
//! | `GET /healthz` | liveness: `{"status":"ok","role":…,"uptime_seconds":…,"version":…}` |
//! | `GET /metrics` | text-format counters, latency/duration histograms, worker gauges |
//!
//! ## Shape
//!
//! One nonblocking accept loop dispatches connections to a fixed pool of
//! worker threads over a channel; each worker drives one keep-alive
//! connection at a time. Shutdown is a latch: the accept loop stops, the
//! channel closes, idle connections notice within one read tick, in-flight
//! requests finish with `Connection: close`, and the job manager drains —
//! no request is ever abandoned mid-response.

use crate::cache::{CacheBudget, TrialCache};
use crate::cluster;
use crate::http::{
    finish_chunks, read_request, write_chunk, write_chunked_head, write_response, ReadOutcome,
    Request, READ_TICK,
};
use crate::jobs::{ExecBackend, Job, JobManager, JobSnapshot, JobState, Retention};
use crate::metrics::{Gauges, Metrics};
use disp_analysis::json::Json;
use disp_analysis::jsonl;
use disp_campaign::grid::{CampaignSpec, Mode};
use disp_campaign::report::{campaign_report_json, section_measurements};
use disp_campaign::telemetry::{timeline_to_jsonl, trace_to_jsonl};
use disp_cluster::ClusterBoard;
use disp_core::scenario::{grammar_help, Registry, ScenarioSpec};
use disp_sim::{DEFAULT_TIMELINE_BUDGET, DEFAULT_TRACE_CAP};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on the number of trials one `POST /runs` may compile to. A
/// submission is validated labels-first, so without this a single request
/// with `"reps": 4000000000` would pass validation and then try to
/// materialize (and hold result lines for) billions of trials —
/// monopolizing the FIFO executor and eventually aborting on allocation.
/// Grids larger than this belong to the offline CLI with `--out`
/// checkpointing, not a request/response lifecycle.
pub const MAX_JOB_TRIALS: usize = 100_000;

/// Coordinator-mode settings (`--role coordinator`).
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// Contiguous grid slots per worker batch.
    pub batch_size: usize,
    /// Lease time-to-live: a worker that stops heartbeating loses its
    /// batch after this long and the batch is requeued.
    pub lease_ttl: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            batch_size: 4,
            lease_ttl: Duration::from_secs(10),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// HTTP worker threads (concurrent connections served).
    pub http_threads: usize,
    /// Engine worker threads per job.
    pub job_threads: usize,
    /// Cache directory (`None` = in-memory cache).
    pub cache_dir: Option<PathBuf>,
    /// Cache byte/entry budgets and compaction threshold.
    pub cache_budget: CacheBudget,
    /// `Some` starts the server as a cluster coordinator: jobs are sharded
    /// onto the lease board instead of the local engine, and the
    /// `/internal/*` endpoints come alive.
    pub coordinator: Option<CoordinatorConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            http_threads: 4,
            job_threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            cache_dir: None,
            cache_budget: CacheBudget::default(),
            coordinator: None,
        }
    }
}

/// Shared application state.
#[derive(Debug)]
pub struct AppState {
    /// The trial cache.
    pub cache: Arc<TrialCache>,
    /// Service counters.
    pub metrics: Arc<Metrics>,
    /// The job manager.
    pub manager: JobManager,
    /// HTTP workers currently inside `handle_connection` (the
    /// utilization gauge on `/metrics`).
    pub workers_busy: AtomicUsize,
    /// Size of the HTTP worker pool.
    pub http_workers: usize,
    /// The cluster lease board (`Some` in coordinator mode).
    pub cluster: Option<Arc<ClusterBoard>>,
    /// When the server started (the `/healthz` uptime clock).
    pub started: Instant,
}

impl AppState {
    /// The role this process serves under, as reported by `/healthz`.
    /// Worker processes (`--role worker`) have no HTTP listener, so the
    /// roles observable here are `standalone` and `coordinator`.
    pub fn role(&self) -> &'static str {
        if self.cluster.is_some() {
            "coordinator"
        } else {
            "standalone"
        }
    }
}

/// A running campaign service.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    state: Arc<AppState>,
}

impl Server {
    /// Bind `bind` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving in background threads.
    pub fn start(bind: &str, config: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(bind).map_err(|e| format!("bind {bind}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let cache = Arc::new(match &config.cache_dir {
            Some(dir) => TrialCache::open_with(dir, config.cache_budget)?,
            None => TrialCache::in_memory_with(config.cache_budget),
        });
        let metrics = Arc::new(Metrics::default());
        let cluster = config
            .coordinator
            .map(|c| Arc::new(ClusterBoard::new(c.lease_ttl)));
        let backend = match (&cluster, config.coordinator) {
            (Some(board), Some(c)) => ExecBackend::Cluster {
                board: Arc::clone(board),
                batch_size: c.batch_size.max(1),
            },
            _ => ExecBackend::Local {
                threads: config.job_threads.max(1),
            },
        };
        let manager = JobManager::start(
            Arc::clone(&cache),
            Arc::clone(&metrics),
            backend,
            Retention::default(),
        );
        let state = Arc::new(AppState {
            cache,
            metrics,
            manager,
            workers_busy: AtomicUsize::new(0),
            http_workers: config.http_threads.max(1),
            cluster,
            started: Instant::now(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));

        let (conn_tx, conn_rx) = channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        // Accepted-but-unclaimed connections: idle keep-alive workers yield
        // to this queue (see `http::read_request`).
        let waiting = Arc::new(AtomicUsize::new(0));
        let workers: Vec<JoinHandle<()>> = (0..config.http_threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&conn_rx);
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                let waiting = Arc::clone(&waiting);
                std::thread::spawn(move || worker_loop(&rx, &state, &shutdown, &waiting))
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_waiting = Arc::clone(&waiting);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(&listener, &conn_tx, &accept_shutdown, &accept_waiting);
            // Closing the channel releases idle workers; busy ones finish
            // their connection first (they poll the shutdown latch).
            drop(conn_tx);
            for worker in workers {
                let _ = worker.join();
            }
        });

        Ok(Server {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            state,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (tests assert on cache/metrics through this).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Graceful drain: stop accepting, finish in-flight requests, cancel
    /// and join the job executor. Blocks until every thread has exited.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.state.manager.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.drain();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    conn_tx: &Sender<TcpStream>,
    shutdown: &AtomicBool,
    waiting: &AtomicUsize,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                waiting.fetch_add(1, Ordering::SeqCst);
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // Transient per-connection failures (e.g. ECONNABORTED) must
            // not kill the accept loop.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    state: &Arc<AppState>,
    shutdown: &AtomicBool,
    waiting: &AtomicUsize,
) {
    loop {
        // Hold the lock only for the recv, not while serving.
        let stream = match rx.lock().unwrap().recv() {
            Ok(stream) => stream,
            Err(_) => return, // channel closed: drain complete
        };
        waiting.fetch_sub(1, Ordering::SeqCst);
        state.workers_busy.fetch_add(1, Ordering::SeqCst);
        let _ = handle_connection(stream, state, shutdown, waiting);
        state.workers_busy.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    state: &Arc<AppState>,
    shutdown: &AtomicBool,
    waiting: &AtomicUsize,
) -> std::io::Result<()> {
    // On BSD-derived platforms accept() propagates the listener's
    // O_NONBLOCK to the accepted socket, where read timeouts would have no
    // effect and every read tick would busy-spin — force blocking mode.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TICK))?;
    // Bound writes too: a client that stops reading a streamed response
    // must not pin this worker (and block graceful drain) forever.
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut buf = Vec::new();
    let mut req_slot = None;
    let mut served = 0usize;
    loop {
        // A fresh connection gets its first request read unconditionally;
        // after that, an idle connection yields to queued ones.
        match read_request(
            &mut stream,
            &mut buf,
            shutdown,
            waiting,
            served > 0,
            &mut req_slot,
        ) {
            Ok(ReadOutcome::Parsed) => {}
            Ok(ReadOutcome::Closed) => return Ok(()),
            Err(_) => {
                Metrics::inc(&state.metrics.http_requests);
                Metrics::inc(&state.metrics.http_errors);
                let body = error_json("malformed request");
                let _ = write_response(&mut stream, 400, "application/json", &body, false);
                return Ok(());
            }
        }
        let req = req_slot.take().expect("Parsed implies a request");
        Metrics::inc(&state.metrics.http_requests);
        let keep_alive = req.wants_keep_alive() && !shutdown.load(Ordering::SeqCst);
        let begun = Instant::now();
        let outcome = route(&req, &mut stream, state, shutdown, keep_alive);
        state
            .metrics
            .http_request_duration_us
            .observe(begun.elapsed().as_micros() as u64);
        outcome?;
        served += 1;
        if !keep_alive {
            return Ok(());
        }
    }
}

fn error_json(message: &str) -> Vec<u8> {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))])
        .to_string_compact()
        .into_bytes()
}

fn respond(
    stream: &mut TcpStream,
    state: &AppState,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    if status >= 400 {
        Metrics::inc(&state.metrics.http_errors);
    }
    write_response(stream, status, content_type, body, keep_alive)
}

fn route(
    req: &Request,
    stream: &mut TcpStream,
    state: &Arc<AppState>,
    shutdown: &AtomicBool,
    keep_alive: bool,
) -> std::io::Result<()> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            // The literal "ok" stays greppable for smoke checks while the
            // body carries identity: role, uptime, workspace version.
            let body = format!(
                "{{\"status\":\"ok\",\"role\":\"{}\",\"uptime_seconds\":{},\"version\":\"{}\"}}\n",
                state.role(),
                state.started.elapsed().as_secs(),
                env!("CARGO_PKG_VERSION"),
            );
            respond(
                stream,
                state,
                200,
                "application/json",
                body.as_bytes(),
                keep_alive,
            )
        }
        ("GET", ["metrics"]) => {
            let gauges = Gauges {
                queue_depth: state.manager.queue_depth(),
                http_workers_busy: state.workers_busy.load(Ordering::SeqCst),
                http_workers: state.http_workers,
                cluster: state.cluster.as_ref().map(|board| board.stats()),
            };
            let body = state.metrics.render(&state.cache, gauges);
            respond(
                stream,
                state,
                200,
                "text/plain",
                body.as_bytes(),
                keep_alive,
            )
        }
        ("POST", ["internal", cmd]) => {
            let (status, body) = cluster::handle_internal(state, shutdown, cmd, &req.body);
            respond(stream, state, status, "application/json", &body, keep_alive)
        }
        ("GET", ["trace"]) => serve_trace(req, stream, state, keep_alive),
        ("GET", ["timeline"]) => serve_timeline(req, stream, state, keep_alive),
        ("GET", ["scenarios"]) => {
            let body = grammar_help(&Registry::builtin());
            respond(
                stream,
                state,
                200,
                "text/plain; charset=utf-8",
                body.as_bytes(),
                keep_alive,
            )
        }
        ("POST", ["runs"]) => match parse_submission(&req.body) {
            Ok(spec) => match state.manager.submit(spec) {
                Ok(job) => {
                    Metrics::inc(&state.metrics.jobs_submitted);
                    let body = Json::Obj(vec![
                        ("id".into(), Json::Str(job.id.clone())),
                        ("state".into(), Json::Str(job.state().label().into())),
                        ("total".into(), Json::Num(job.total as f64)),
                        ("url".into(), Json::Str(format!("/runs/{}", job.id))),
                    ])
                    .to_string_compact()
                    .into_bytes();
                    respond(stream, state, 201, "application/json", &body, keep_alive)
                }
                Err(e) => respond(
                    stream,
                    state,
                    409,
                    "application/json",
                    &error_json(&e),
                    keep_alive,
                ),
            },
            Err(e) => respond(
                stream,
                state,
                400,
                "application/json",
                &error_json(&e),
                keep_alive,
            ),
        },
        ("GET", ["runs", id]) => match state.manager.get(id) {
            Some(job) => {
                let body = job_status_json(&job).to_string_compact().into_bytes();
                respond(stream, state, 200, "application/json", &body, keep_alive)
            }
            None => respond(
                stream,
                state,
                404,
                "application/json",
                &error_json("no such run"),
                keep_alive,
            ),
        },
        ("GET", ["runs", id, "events"]) => match state.manager.get(id) {
            Some(job) => stream_events(stream, &job, state, shutdown, keep_alive),
            None => respond(
                stream,
                state,
                404,
                "application/json",
                &error_json("no such run"),
                keep_alive,
            ),
        },
        ("GET", ["runs", id, "timeline"]) => match state.manager.get(id) {
            Some(job) => {
                let body = job.progress_jsonl();
                write_chunked_head(stream, 200, "application/jsonl", keep_alive)?;
                write_chunk(stream, body.as_bytes())?;
                finish_chunks(stream)
            }
            None => respond(
                stream,
                state,
                404,
                "application/json",
                &error_json("no such run"),
                keep_alive,
            ),
        },
        ("GET", ["runs", id, "results"]) => match state.manager.get(id) {
            Some(job) => match job.results() {
                Some(lines) => {
                    if req.query_param("format") == Some("summary") {
                        // Memoized on the job: big summaries parse every
                        // line, and dashboards poll this endpoint.
                        let doc = job.summary_or_build(|| summary_json(&job.spec, &lines));
                        respond(
                            stream,
                            state,
                            200,
                            "application/json",
                            doc.as_bytes(),
                            keep_alive,
                        )
                    } else {
                        stream_results(stream, &lines, keep_alive)
                    }
                }
                None => {
                    let msg = format!("run is {}, results not available", job.state().label());
                    respond(
                        stream,
                        state,
                        409,
                        "application/json",
                        &error_json(&msg),
                        keep_alive,
                    )
                }
            },
            None => respond(
                stream,
                state,
                404,
                "application/json",
                &error_json("no such run"),
                keep_alive,
            ),
        },
        ("DELETE", ["runs", id]) => match state.manager.get(id) {
            Some(job) => {
                job.request_cancel();
                let body = job_status_json(&job).to_string_compact().into_bytes();
                respond(stream, state, 200, "application/json", &body, keep_alive)
            }
            None => respond(
                stream,
                state,
                404,
                "application/json",
                &error_json("no such run"),
                keep_alive,
            ),
        },
        (_, ["runs"]) | (_, ["runs", ..]) => respond(
            stream,
            state,
            405,
            "application/json",
            &error_json("method not allowed"),
            keep_alive,
        ),
        _ => respond(
            stream,
            state,
            404,
            "application/json",
            &error_json("no such endpoint"),
            keep_alive,
        ),
    }
}

/// Stream finished JSONL lines as a chunked response, batching lines into
/// ~32 KiB chunks so million-trial results do not degenerate into a
/// syscall per line.
fn stream_results(
    stream: &mut TcpStream,
    lines: &[String],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_chunked_head(stream, 200, "application/jsonl", keep_alive)?;
    let mut batch = Vec::with_capacity(64 * 1024);
    for line in lines {
        batch.extend_from_slice(line.as_bytes());
        batch.push(b'\n');
        if batch.len() >= 32 * 1024 {
            write_chunk(stream, &batch)?;
            batch.clear();
        }
    }
    write_chunk(stream, &batch)?;
    finish_chunks(stream)
}

/// Stream a job's event log as Server-Sent Events over chunked transfer.
/// Each frame is `data: {json}\n\n`. A subscriber that fell behind the
/// bounded per-job window gets an `overflow` frame (with the drop count)
/// before resuming — never an unbounded buffer. The stream ends cleanly
/// when the job settles and the log is drained, or when the server begins
/// shutdown — SIGTERM drains subscribers instead of severing them.
fn stream_events(
    stream: &mut TcpStream,
    job: &Job,
    state: &AppState,
    shutdown: &AtomicBool,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_chunked_head(stream, 200, "text/event-stream", keep_alive)?;
    let mut cursor = 0u64;
    loop {
        let batch = job.events_after(cursor, 2 * READ_TICK);
        if batch.dropped > 0 {
            cursor += batch.dropped;
            state
                .metrics
                .events_dropped
                .fetch_add(batch.dropped, Ordering::Relaxed);
            let marker = format!(
                "data: {{\"event\":\"overflow\",\"dropped\":{}}}\n\n",
                batch.dropped
            );
            write_chunk(stream, marker.as_bytes())?;
        }
        let mut frame = String::new();
        for (seq, line) in &batch.events {
            frame.push_str("data: ");
            frame.push_str(line);
            frame.push_str("\n\n");
            cursor = seq + 1;
        }
        if !frame.is_empty() {
            write_chunk(stream, frame.as_bytes())?;
        }
        if (batch.closed && batch.events.is_empty()) || shutdown.load(Ordering::SeqCst) {
            return finish_chunks(stream);
        }
    }
}

/// `GET /trace?scenario=LABEL[&seed=S][&cap=N]`: run one traced trial and
/// stream its event log as JSONL. The label is validated first (an illegal
/// scenario is a 400, never a mid-stream failure) and the trace is capped
/// so a pathological request cannot hold an unbounded log in memory.
fn serve_trace(
    req: &Request,
    stream: &mut TcpStream,
    state: &AppState,
    keep_alive: bool,
) -> std::io::Result<()> {
    let bad = |stream: &mut TcpStream, msg: &str| {
        respond(
            stream,
            state,
            400,
            "application/json",
            &error_json(msg),
            keep_alive,
        )
    };
    let label = match req.query_param("scenario") {
        Some(label) => label,
        None => return bad(stream, "missing required query parameter 'scenario'"),
    };
    let seed = match req.query_param("seed") {
        Some(s) => match s.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => return bad(stream, "seed must be an unsigned integer"),
        },
        None => 1,
    };
    let cap = match req.query_param("cap") {
        Some(c) => match c.parse::<usize>() {
            Ok(cap) if cap > 0 => cap,
            _ => return bad(stream, "cap must be a positive integer"),
        },
        None => DEFAULT_TRACE_CAP,
    };
    let registry = Registry::builtin();
    let spec = match ScenarioSpec::parse(label, &registry) {
        Ok(spec) => spec,
        Err(e) => return bad(stream, &format!("scenario '{label}': {e}")),
    };
    match spec.run_traced(&registry, seed, cap) {
        Ok((_report, trace)) => {
            let body = trace_to_jsonl(&trace);
            write_chunked_head(stream, 200, "application/jsonl", keep_alive)?;
            write_chunk(stream, body.as_bytes())?;
            finish_chunks(stream)
        }
        Err(e) => bad(stream, &e.to_string()),
    }
}

/// `GET /timeline?scenario=LABEL[&seed=S][&budget=N]`: run one recorded
/// trial and stream its flight-recorder timeline as JSONL — byte-identical
/// to `disp-campaign timeline` for the same scenario and seed (both sides
/// use the shared encoder). The label is validated first, and the budget
/// bounds recorder memory regardless of how long the trial runs.
fn serve_timeline(
    req: &Request,
    stream: &mut TcpStream,
    state: &AppState,
    keep_alive: bool,
) -> std::io::Result<()> {
    let bad = |stream: &mut TcpStream, msg: &str| {
        respond(
            stream,
            state,
            400,
            "application/json",
            &error_json(msg),
            keep_alive,
        )
    };
    let label = match req.query_param("scenario") {
        Some(label) => label,
        None => return bad(stream, "missing required query parameter 'scenario'"),
    };
    let seed = match req.query_param("seed") {
        Some(s) => match s.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => return bad(stream, "seed must be an unsigned integer"),
        },
        None => 1,
    };
    let budget = match req.query_param("budget") {
        Some(b) => match b.parse::<usize>() {
            Ok(budget) if budget > 0 => budget,
            _ => return bad(stream, "budget must be a positive integer"),
        },
        None => DEFAULT_TIMELINE_BUDGET,
    };
    let registry = Registry::builtin();
    let spec = match ScenarioSpec::parse(label, &registry) {
        Ok(spec) => spec,
        Err(e) => return bad(stream, &format!("scenario '{label}': {e}")),
    };
    match spec.run_with_timeline(&registry, seed, budget) {
        Ok((_report, timeline)) => {
            // The gauge tracks the deepest decimation any served timeline
            // reached: nonzero means budgets are being exercised.
            let level = timeline.decimation_level() as u64;
            state
                .metrics
                .timeline_decimation_level
                .fetch_max(level, Ordering::Relaxed);
            let body = timeline_to_jsonl(&timeline, &spec.label(), seed);
            write_chunked_head(stream, 200, "application/jsonl", keep_alive)?;
            write_chunk(stream, body.as_bytes())?;
            finish_chunks(stream)
        }
        Err(e) => bad(stream, &e.to_string()),
    }
}

/// Build the JSON summary document for a finished job — the same encoder
/// (`campaign_report_json`) behind `disp-campaign report --format json`.
fn summary_json(spec: &CampaignSpec, lines: &[String]) -> String {
    let joined = lines.join("\n");
    let records = jsonl::read_trials(BufReader::new(joined.as_bytes()))
        .map(|ingest| ingest.records)
        .unwrap_or_default();
    let sections = section_measurements(spec, records);
    campaign_report_json(spec, &sections).to_string_compact()
}

/// The status document for `GET /runs/:id` and `DELETE /runs/:id`:
/// snapshot counters plus live per-point streaming statistics (count,
/// mean/stddev/min/max/p50/p99 of moves and time) and the throughput
/// clock. Counts are monotone across polls of a running job — `done` only
/// grows, and each point's `count` only grows.
fn job_status_json(job: &Job) -> Json {
    let snap = job.snapshot();
    let mut fields = match snapshot_json(&snap) {
        Json::Obj(fields) => fields,
        _ => unreachable!("snapshot_json returns an object"),
    };
    let points: Vec<(String, Json)> = job
        .point_stats()
        .into_iter()
        .map(|(label, stats)| {
            (
                label,
                Json::Obj(vec![
                    ("count".into(), Json::Num(stats.moves.count() as f64)),
                    ("moves".into(), stats.moves.to_json()),
                    ("time".into(), stats.time.to_json()),
                ]),
            )
        })
        .collect();
    fields.push(("points".into(), Json::Obj(points)));
    if let Some(secs) = job.running_secs() {
        fields.push(("elapsed_secs".into(), Json::Num(secs)));
        if secs > 0.0 {
            fields.push((
                "throughput_per_sec".into(),
                Json::Num(snap.done as f64 / secs),
            ));
        }
    }
    Json::Obj(fields)
}

fn snapshot_json(snap: &JobSnapshot) -> Json {
    let mut fields = vec![
        ("id".into(), Json::Str(snap.id.clone())),
        ("state".into(), Json::Str(snap.state.label().into())),
        ("total".into(), Json::Num(snap.total as f64)),
        ("done".into(), Json::Num(snap.done as f64)),
        ("cache_hits".into(), Json::Num(snap.cache_hits as f64)),
        ("executed".into(), Json::Num(snap.executed as f64)),
    ];
    if let JobState::Failed(msg) = &snap.state {
        fields.push(("error".into(), Json::Str(msg.clone())));
    }
    Json::Obj(fields)
}

/// Parse and validate a `POST /runs` body into a campaign spec.
///
/// Accepts either an ad-hoc grid —
/// `{"scenarios": ["star/k12/rooted/sync/probe-dfs", …], "reps": 2, "seed": 7}`
/// — or a named campaign — `{"campaign": "mini", "mode": "quick", "seed": 7}`.
/// Every scenario is validated against the builtin registry before the job
/// is accepted, so an illegal grid is a 400 at submit time, never a
/// mid-job failure.
pub fn parse_submission(body: &[u8]) -> Result<CampaignSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = Json::parse(text.trim()).map_err(|e| format!("body is not JSON: {e}"))?;
    let seed = match v.get("seed") {
        Some(s) => s
            .as_u64_lossless()
            .ok_or("seed must be an unsigned integer")?,
        None => 1,
    };
    let registry = Registry::builtin();
    let spec = match (v.get("scenarios"), v.get("campaign")) {
        (Some(_), Some(_)) => {
            return Err("'scenarios' and 'campaign' are mutually exclusive".into())
        }
        (Some(Json::Arr(items)), None) => {
            if items.is_empty() {
                return Err("'scenarios' must not be empty".into());
            }
            let reps = match v.get("reps") {
                Some(r) => r.as_u64().ok_or("reps must be an unsigned integer")? as usize,
                None => 1,
            };
            let scenarios = items
                .iter()
                .map(|item| {
                    let label = item.as_str().ok_or("scenarios must be label strings")?;
                    ScenarioSpec::parse(label, &registry).map_err(|e| e.to_string())
                })
                .collect::<Result<Vec<_>, String>>()?;
            CampaignSpec::custom(scenarios, reps.max(1), seed)
        }
        (None, Some(name)) => {
            let name = name.as_str().ok_or("campaign must be a string")?;
            let mode = match v.get("mode") {
                Some(m) => {
                    let label = m.as_str().ok_or("mode must be a string")?;
                    Mode::from_label(label).ok_or_else(|| format!("unknown mode '{label}'"))?
                }
                None => Mode::Quick,
            };
            CampaignSpec::by_name(name, mode, seed)
                .ok_or_else(|| format!("unknown campaign '{name}'"))?
        }
        _ => return Err("body needs 'scenarios' (array of labels) or 'campaign'".into()),
    };
    // Count trials without expanding the grid (expansion itself would be
    // the allocation this cap exists to prevent).
    let trial_count = spec
        .sections
        .iter()
        .flat_map(|s| &s.points)
        .map(|p| p.repetitions.max(1))
        .fold(0usize, usize::saturating_add);
    if trial_count > MAX_JOB_TRIALS {
        return Err(format!(
            "grid expands to {trial_count} trials, above the per-request cap of \
             {MAX_JOB_TRIALS}; run grids this large offline with `disp-campaign run --out`",
        ));
    }
    for point in spec.sections.iter().flat_map(|s| &s.points) {
        point
            .scenario
            .validate(&registry)
            .map_err(|e| format!("scenario '{}': {e}", point.scenario.label()))?;
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submissions_parse_and_validate() {
        let spec = parse_submission(
            br#"{"scenarios":["star/k8/rooted/sync/probe-dfs"],"reps":2,"seed":7}"#,
        )
        .unwrap();
        assert_eq!(spec.name, "custom");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.trials().len(), 2);

        let named = parse_submission(br#"{"campaign":"mini","mode":"quick","seed":3}"#).unwrap();
        assert_eq!(named.name, "mini");

        // Defaults: reps 1, seed 1, mode quick.
        let d = parse_submission(br#"{"scenarios":["star/k8/rooted/sync/probe-dfs"]}"#).unwrap();
        assert_eq!(d.seed, 1);
        assert_eq!(d.trials().len(), 1);
    }

    #[test]
    fn bad_submissions_are_typed_errors() {
        for (body, needle) in [
            (&br#"{"reps":2}"#[..], "needs 'scenarios'"),
            (br#"{"scenarios":[]}"#, "must not be empty"),
            (br#"{"scenarios":["nope/k8"]}"#, "label"),
            (
                br#"{"scenarios":["star/k8/rooted/sync/quantum-dfs"]}"#,
                "unknown algorithm",
            ),
            (
                br#"{"scenarios":["star/k8/scatter/sync/probe-dfs"]}"#,
                "rooted",
            ),
            (br#"{"campaign":"nope"}"#, "unknown campaign"),
            (
                br#"{"scenarios":["star/k8/rooted/sync/probe-dfs"],"reps":4000000000}"#,
                "per-request cap",
            ),
            (
                br#"{"campaign":"mini","scenarios":["x"]}"#,
                "mutually exclusive",
            ),
            (br#"not json"#, "not JSON"),
        ] {
            let err = parse_submission(body).unwrap_err();
            assert!(err.contains(needle), "body {:?} → {err}", body);
        }
    }
}
