//! The campaign-service daemon.
//!
//! ```text
//! disp-serve [--addr HOST:PORT] [--http-threads N] [--job-threads N]
//!            [--cache-dir DIR]
//! ```
//!
//! Runs until SIGINT/SIGTERM, then drains gracefully: in-flight requests
//! finish, the job executor stops between trials (completed trials are
//! already in the cache), and the process exits 0. With `--cache-dir` the
//! trial cache persists across restarts, so a restarted server serves the
//! same grids from disk without recomputation.

use disp_campaign::signal;
use disp_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

const USAGE: &str = "\
disp-serve — the deterministic campaign service

USAGE:
  disp-serve [--addr HOST:PORT] [--http-threads N] [--job-threads N]
             [--cache-dir DIR]

Defaults: --addr 127.0.0.1:8080, 4 HTTP workers, one engine worker per
core, in-memory cache. See README 'serve quick-start' for the endpoints.
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("disp-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:8080".to_string();
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--http-threads" => {
                config.http_threads = value("--http-threads")?
                    .parse()
                    .map_err(|_| "--http-threads expects a positive integer".to_string())?
            }
            "--job-threads" => {
                config.job_threads = value("--job-threads")?
                    .parse()
                    .map_err(|_| "--job-threads expects a positive integer".to_string())?
            }
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }

    let latch = signal::install();
    let server = Server::start(&addr, config.clone())?;
    eprintln!(
        "disp-serve: listening on {} ({} HTTP workers, {} engine workers, cache: {})",
        server.addr(),
        config.http_threads,
        config.job_threads,
        match &config.cache_dir {
            Some(dir) => dir.display().to_string(),
            None => "in-memory".to_string(),
        },
    );
    while !latch.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("disp-serve: signal received, draining…");
    server.shutdown();
    eprintln!("disp-serve: drained cleanly");
    Ok(())
}
