//! The campaign-service daemon — standalone, coordinator or worker.
//!
//! ```text
//! disp-serve [--addr HOST:PORT] [--http-threads N] [--job-threads N]
//!            [--cache-dir DIR] [--cache-max-entries N] [--cache-max-bytes N]
//!            [--role coordinator [--batch-size N] [--lease-ttl-secs S]]
//! disp-serve --role worker --coordinator HOST:PORT [--worker-id ID]
//!            [--job-threads N] [--cache-dir DIR]
//! disp-serve compact --cache-dir DIR
//! ```
//!
//! The default role serves and executes campaigns in-process. A
//! *coordinator* accepts the same `POST /runs` API but shards each grid
//! into trial batches that *workers* pull over `/internal/*`; a worker
//! needs no listen address at all — it dials the coordinator, executes
//! leased batches and uploads the records. `compact` rewrites a cache log
//! offline, dropping superseded lines.
//!
//! All roles run until SIGINT/SIGTERM, then drain gracefully and exit 0.
//! With `--cache-dir` the trial cache persists across restarts, so a
//! restarted server (or worker) serves the same grids from disk without
//! recomputation.

use disp_campaign::signal;
use disp_cluster::WorkerShared;
use disp_serve::cache::compact_file;
use disp_serve::cluster::WorkerProcessConfig;
use disp_serve::{run_worker, CoordinatorConfig, ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

const USAGE: &str = "\
disp-serve — the deterministic campaign service

USAGE:
  disp-serve [--addr HOST:PORT] [--http-threads N] [--job-threads N]
             [--cache-dir DIR] [--cache-max-entries N] [--cache-max-bytes N]
             [--role coordinator [--batch-size N] [--lease-ttl-secs S]]
  disp-serve --role worker --coordinator HOST:PORT [--worker-id ID]
             [--job-threads N] [--cache-dir DIR]
  disp-serve compact --cache-dir DIR

Defaults: --addr 127.0.0.1:8080, 4 HTTP workers, one engine worker per
core, in-memory cache. --role coordinator serves the same API but farms
trial batches out to workers (defaults: --batch-size 4,
--lease-ttl-secs 10). --role worker dials a coordinator and executes
leased batches until SIGTERM or the coordinator drains. compact rewrites
DIR/cache.jsonl in place, dropping superseded lines. See README 'serve
quick-start' and 'running a cluster' for the endpoints.
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("disp-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compact") {
        args.remove(0);
        return cmd_compact(&args);
    }

    let mut addr = "127.0.0.1:8080".to_string();
    let mut config = ServeConfig::default();
    let mut role = "serve".to_string();
    let mut coordinator_addr = String::new();
    let mut worker_id = format!("w-{}", std::process::id());
    let mut cluster = CoordinatorConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--http-threads" => {
                config.http_threads = value("--http-threads")?
                    .parse()
                    .map_err(|_| "--http-threads expects a positive integer".to_string())?
            }
            "--job-threads" => {
                config.job_threads = value("--job-threads")?
                    .parse()
                    .map_err(|_| "--job-threads expects a positive integer".to_string())?
            }
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--cache-max-entries" => {
                config.cache_budget.max_entries = value("--cache-max-entries")?
                    .parse()
                    .map_err(|_| "--cache-max-entries expects a positive integer".to_string())?
            }
            "--cache-max-bytes" => {
                config.cache_budget.max_bytes = value("--cache-max-bytes")?
                    .parse()
                    .map_err(|_| "--cache-max-bytes expects a positive integer".to_string())?
            }
            "--role" => {
                role = value("--role")?;
                if !matches!(role.as_str(), "serve" | "coordinator" | "worker") {
                    return Err(format!(
                        "--role expects serve|coordinator|worker, got '{role}'"
                    ));
                }
            }
            "--coordinator" => coordinator_addr = value("--coordinator")?,
            "--worker-id" => worker_id = value("--worker-id")?,
            "--batch-size" => {
                cluster.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|_| "--batch-size expects a positive integer".to_string())?
            }
            "--lease-ttl-secs" => {
                cluster.lease_ttl = Duration::from_secs(
                    value("--lease-ttl-secs")?
                        .parse()
                        .map_err(|_| "--lease-ttl-secs expects a positive integer".to_string())?,
                )
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }

    if role == "worker" {
        return run_worker_role(&coordinator_addr, &worker_id, &config);
    }
    if role == "coordinator" {
        config.coordinator = Some(cluster);
    }

    let latch = signal::install();
    let server = Server::start(&addr, config.clone())?;
    eprintln!(
        "disp-serve: {} listening on {} ({} HTTP workers, {}, cache: {})",
        role,
        server.addr(),
        config.http_threads,
        match config.coordinator {
            Some(c) => format!("batches of {} with {:?} leases", c.batch_size, c.lease_ttl),
            None => format!("{} engine workers", config.job_threads),
        },
        match &config.cache_dir {
            Some(dir) => dir.display().to_string(),
            None => "in-memory".to_string(),
        },
    );
    while !latch.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("disp-serve: signal received, draining…");
    server.shutdown();
    eprintln!("disp-serve: drained cleanly");
    Ok(())
}

/// `--role worker`: dial the coordinator and pull batches until SIGTERM
/// or a coordinator drain, then print the lifetime summary.
fn run_worker_role(coordinator: &str, id: &str, config: &ServeConfig) -> Result<(), String> {
    if coordinator.is_empty() {
        return Err("--role worker requires --coordinator HOST:PORT".into());
    }
    let latch = signal::install();
    let shared = WorkerShared::new();
    // Relay the process signal latch into the worker's stop flag so the
    // lease loop exits between batches (and a running batch is cancelled).
    let relay = {
        let shared = std::sync::Arc::clone(&shared);
        std::thread::spawn(move || {
            while !latch.load(Ordering::SeqCst) && !shared.stopping() {
                std::thread::sleep(Duration::from_millis(50));
            }
            shared.request_stop();
        })
    };
    let cfg = WorkerProcessConfig {
        id: id.to_string(),
        threads: config.job_threads,
        cache_dir: config.cache_dir.clone(),
        poll: Duration::from_millis(200),
    };
    eprintln!(
        "disp-serve: worker {id} dialing {coordinator} ({} engine workers, cache: {})",
        cfg.threads,
        match &cfg.cache_dir {
            Some(dir) => dir.display().to_string(),
            None => "in-memory".to_string(),
        },
    );
    let result = run_worker(coordinator, &cfg, &shared);
    shared.request_stop();
    let _ = relay.join();
    let summary = result?;
    eprintln!(
        "disp-serve: worker {id} done: {} batches, {} executed, {} local hits, \
         {} uploaded, {} abandoned",
        summary.batches, summary.executed, summary.local_hits, summary.uploaded, summary.abandoned,
    );
    Ok(())
}

/// `compact --cache-dir DIR`: offline compaction of `DIR/cache.jsonl`.
fn cmd_compact(args: &[String]) -> Result<(), String> {
    let mut dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                dir = Some(PathBuf::from(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--cache-dir requires a value".to_string())?,
                ))
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    let dir = dir.ok_or("compact requires --cache-dir DIR")?;
    let stats = compact_file(&dir.join("cache.jsonl"))?;
    println!(
        "disp-serve: compacted {}: {} lines / {} bytes → {} lines / {} bytes",
        dir.join("cache.jsonl").display(),
        stats.lines_in,
        stats.bytes_in,
        stats.lines_kept,
        stats.bytes_out,
    );
    Ok(())
}
