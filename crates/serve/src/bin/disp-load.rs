//! The load-generation harness for `disp-serve`.
//!
//! ```text
//! disp-load bench  --addr HOST:PORT [--connections N] [--requests N]
//!                  [--scenario LABEL]... [--grid default|micro] [--min-rps N]
//!                  [--reps N] [--seed S] [--format text|json]
//! disp-load once   --addr HOST:PORT --scenario LABEL... [--reps N] [--seed S]
//! disp-load events --addr HOST:PORT [--scenario LABEL]... [--reps N] [--seed S]
//! disp-load watch  --addr HOST:PORT [--scenario LABEL]... [--run ID]
//! disp-load get    --addr HOST:PORT --path PATH
//! ```
//!
//! * `bench` warms the cache with one submission, then hammers the server
//!   from N keep-alive connections with a mixed submit/poll/fetch/metrics
//!   workload and reports throughput and p50/p99 latency — the numbers
//!   behind the ROADMAP's "heavy traffic" claim. `--format json` prints
//!   the same numbers as one machine-readable JSON object. `--grid micro`
//!   swaps the builtin grid for a wide grid of many small trials (the
//!   server-side analogue of the bench gate's micro workload, pushing the
//!   executor's per-worker world pools), and `--min-rps` turns the
//!   measured warm-cache throughput into a pass/fail floor.
//! * `once` submits one grid, waits for completion and streams the JSONL
//!   results to stdout (the CI smoke diffs this against an offline
//!   `disp-campaign run` of the same grid).
//! * `events` submits one grid and subscribes to `GET /runs/:id/events`,
//!   verifying the live stream: every grid trial produces a completed or
//!   cached event, lifecycle events bracket them, and the stream closes
//!   cleanly when the job settles (the CI events smoke). A subscriber
//!   that fell behind (an `overflow` frame) is a *failure*: the windows
//!   are sized so a healthy consumer never drops, so a drop is a signal,
//!   not noise.
//! * `watch` is the live dashboard: submit a grid (or point it at a
//!   running job with `--run ID`) and poll `GET /runs/:id/timeline`,
//!   re-rendering an ASCII sparkline of completed trials until the job
//!   settles.
//! * `get` fetches one path and prints the body (so CI needs no curl).

use disp_analysis::json::Json;
use disp_serve::Client;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "\
disp-load — load generation for disp-serve

USAGE:
  disp-load bench  --addr HOST:PORT [--connections N] [--requests N]
                   [--scenario LABEL]... [--grid default|micro] [--min-rps N]
                   [--reps N] [--seed S] [--format text|json]
                   [--target serve|coordinator]
  disp-load once   --addr HOST:PORT --scenario LABEL... [--reps N] [--seed S]
  disp-load events --addr HOST:PORT [--scenario LABEL]... [--reps N] [--seed S]
  disp-load watch  --addr HOST:PORT [--scenario LABEL]... [--reps N] [--seed S]
                   [--run ID]
  disp-load get    --addr HOST:PORT --path PATH

bench defaults: 4 connections, 1000 requests, a small builtin grid.
The mixed workload is, per 8 requests: 1 submit, 3 status polls,
3 results fetches, 1 metrics scrape. --grid micro replaces the builtin
grid with many small trials across families and schedules; --min-rps N
fails the bench when the measured warm-cache throughput falls below N
requests per second. --target coordinator additionally reports how the
warm-up grid's trials were spread across cluster workers (from the
/metrics per-worker gauges).

events submits a grid, subscribes to the run's live event stream and
verifies it: one completed/cached event per grid trial, a clean close,
and no overflow frame (a subscriber that fell behind exits non-zero).

watch submits a grid (or attaches to a running job with --run ID) and
polls GET /runs/:id/timeline, re-rendering a sparkline of completed
trials until the job settles.
";

struct Flags {
    addr: String,
    connections: usize,
    requests: usize,
    scenarios: Vec<String>,
    reps: usize,
    seed: u64,
    path: String,
    json: bool,
    coordinator: bool,
    micro: bool,
    min_rps: f64,
    run: String,
}

/// The `--grid micro` grid: many small trials across graph families,
/// schedules and both algorithms — the serve-path analogue of the bench
/// gate's micro workload. Every trial is tiny, so the executor's cost is
/// dominated by per-trial setup, which is exactly what the per-worker
/// world pools are for.
fn micro_grid() -> Vec<String> {
    [
        "line/k256/rooted/sync/probe-dfs",
        "line/k192/rooted/sync/probe-dfs",
        "line/k128/rooted/sync/ks-dfs",
        "ring/k256/rooted/sync/probe-dfs",
        "ring/k128/rooted/sync/ks-dfs",
        "star/k64/rooted/sync/probe-dfs",
        "star/k64/rooted/sync/ks-dfs",
        "rtree/k128/rooted/sync/probe-dfs",
        "rtree/k64/rooted/async-rand0.7/ks-dfs",
        "line/k128/rooted/async-lag4/probe-dfs",
        "star/k32/rooted/async-rand0.7/probe-dfs",
        "ring/k64/rooted/async-lag4/ks-dfs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        addr: String::new(),
        connections: 4,
        requests: 1000,
        scenarios: Vec::new(),
        reps: 2,
        seed: 7,
        path: "/healthz".into(),
        json: false,
        coordinator: false,
        micro: false,
        min_rps: 0.0,
        run: String::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => flags.addr = value("--addr")?,
            "--connections" => {
                flags.connections = value("--connections")?
                    .parse()
                    .map_err(|_| "--connections expects a positive integer".to_string())?
            }
            "--requests" => {
                flags.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests expects a positive integer".to_string())?
            }
            "--scenario" => flags.scenarios.push(value("--scenario")?),
            "--reps" => {
                flags.reps = value("--reps")?
                    .parse()
                    .map_err(|_| "--reps expects a positive integer".to_string())?
            }
            "--seed" => {
                flags.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an unsigned integer".to_string())?
            }
            "--path" => flags.path = value("--path")?,
            "--run" => flags.run = value("--run")?,
            "--grid" => {
                flags.micro = match value("--grid")?.as_str() {
                    "micro" => true,
                    "default" => false,
                    other => return Err(format!("--grid expects default|micro, got '{other}'")),
                }
            }
            "--min-rps" => {
                flags.min_rps = value("--min-rps")?
                    .parse()
                    .map_err(|_| "--min-rps expects a number".to_string())?
            }
            "--target" => {
                flags.coordinator = match value("--target")?.as_str() {
                    "coordinator" => true,
                    "serve" => false,
                    other => {
                        return Err(format!("--target expects serve|coordinator, got '{other}'"))
                    }
                }
            }
            "--format" => {
                flags.json = match value("--format")?.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("--format expects text|json, got '{other}'")),
                }
            }
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    if flags.addr.is_empty() {
        return Err("--addr HOST:PORT is required".into());
    }
    if flags.scenarios.is_empty() {
        flags.scenarios = if flags.micro {
            micro_grid()
        } else {
            // A small mixed grid: SYNC + ASYNC, two algorithms.
            vec![
                "star/k12/rooted/sync/probe-dfs".into(),
                "rtree/k12/rooted/async-rand0.7/ks-dfs".into(),
            ]
        };
    } else if flags.micro {
        return Err("--grid micro and explicit --scenario are mutually exclusive".into());
    }
    Ok(flags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("bench") => cmd_bench(&args[1..]),
        Some("once") => cmd_once(&args[1..]),
        Some("events") => cmd_events(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("get") => cmd_get(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("disp-load: {message}");
            ExitCode::FAILURE
        }
    }
}

fn submission_body(flags: &Flags) -> Json {
    Json::Obj(vec![
        (
            "scenarios".into(),
            Json::Arr(
                flags
                    .scenarios
                    .iter()
                    .map(|l| Json::Str(l.clone()))
                    .collect(),
            ),
        ),
        ("reps".into(), Json::Num(flags.reps as f64)),
        ("seed".into(), Json::from_u64_lossless(flags.seed)),
    ])
}

/// Submit one grid and wait until it is done; returns the job id.
fn submit_and_wait(client: &mut Client, flags: &Flags) -> Result<String, String> {
    let resp = client.post_json("/runs", &submission_body(flags))?;
    if resp.status != 201 {
        return Err(format!("submit failed ({}): {}", resp.status, resp.text()));
    }
    let id = resp
        .json()?
        .get("id")
        .and_then(Json::as_str)
        .ok_or("submit response carries no id")?
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = client.get(&format!("/runs/{id}"))?;
        let state = status
            .json()?
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        match state.as_str() {
            "done" => return Ok(id),
            "queued" | "running" => {
                if Instant::now() > deadline {
                    return Err(format!("run {id} still {state} after 300s"));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            other => return Err(format!("run {id} ended {other}")),
        }
    }
}

fn cmd_once(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut client = Client::new(&flags.addr);
    let id = submit_and_wait(&mut client, &flags)?;
    let results = client.get(&format!("/runs/{id}/results"))?;
    if results.status != 200 {
        return Err(format!("results failed ({})", results.status));
    }
    print!("{}", results.text());
    Ok(())
}

/// Submit a grid and verify its live event stream end to end: subscribe to
/// `GET /runs/:id/events`, block until the job settles and the server
/// closes the stream, then check that every grid trial produced exactly
/// one completed/cached event. A truncated chunked body (unclean close)
/// surfaces as a transport error from the client, so reaching the checks
/// at all proves the stream ended cleanly.
fn cmd_events(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut client = Client::new(&flags.addr);
    let resp = client.post_json("/runs", &submission_body(&flags))?;
    if resp.status != 201 {
        return Err(format!("submit failed ({}): {}", resp.status, resp.text()));
    }
    let submitted = resp.json()?;
    let id = submitted
        .get("id")
        .and_then(Json::as_str)
        .ok_or("submit response carries no id")?
        .to_string();
    let total = submitted
        .get("total")
        .and_then(Json::as_u64)
        .ok_or("submit response carries no total")? as usize;

    let stream = client.get(&format!("/runs/{id}/events"))?;
    if stream.status != 200 {
        return Err(format!("events stream → {}", stream.status));
    }
    let body = stream.text();
    let mut completed = 0usize;
    let mut cached = 0usize;
    let mut settled = false;
    let mut overflow = 0u64;
    for line in body.lines() {
        let Some(payload) = line.strip_prefix("data: ") else {
            continue;
        };
        let event = Json::parse(payload).map_err(|e| format!("bad event {payload:?}: {e}"))?;
        match event.get("event").and_then(Json::as_str) {
            Some("completed") => completed += 1,
            Some("cached") => cached += 1,
            Some("job_state") => {
                if let Some("done" | "cancelled" | "failed") =
                    event.get("state").and_then(Json::as_str)
                {
                    settled = true;
                }
            }
            Some("overflow") => {
                overflow += event.get("dropped").and_then(Json::as_u64).unwrap_or(0);
            }
            _ => {}
        }
    }
    if !settled {
        return Err("stream closed without a terminal job_state event".into());
    }
    // An overflow frame means this subscriber fell behind the retained
    // window and events were dropped — the stream is no longer a faithful
    // record, so the check fails loudly instead of shrugging.
    if overflow > 0 {
        return Err(format!(
            "event stream overflowed: {overflow} events dropped \
             (saw {completed} completed + {cached} cached of {total})",
        ));
    }
    if completed + cached != total {
        return Err(format!(
            "expected {total} trial events, saw {completed} completed + {cached} cached",
        ));
    }
    println!(
        "events ok: {total} trials → {completed} completed, {cached} cached, \
         clean close"
    );
    Ok(())
}

/// The live dashboard: poll `GET /runs/:id/timeline` and re-render an
/// ASCII sparkline of completed trials until the job settles. Without
/// `--run ID` it submits the flag grid first and watches that.
fn cmd_watch(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut client = Client::new(&flags.addr);
    let id = if flags.run.is_empty() {
        let resp = client.post_json("/runs", &submission_body(&flags))?;
        if resp.status != 201 {
            return Err(format!("submit failed ({}): {}", resp.status, resp.text()));
        }
        resp.json()?
            .get("id")
            .and_then(Json::as_str)
            .ok_or("submit response carries no id")?
            .to_string()
    } else {
        flags.run.clone()
    };
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut last = String::new();
    loop {
        let status = client.get(&format!("/runs/{id}"))?;
        if status.status != 200 {
            return Err(format!("/runs/{id} → {}", status.status));
        }
        let doc = status.json()?;
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let total = doc.get("total").and_then(Json::as_u64).unwrap_or(0);
        let done = doc.get("done").and_then(Json::as_u64).unwrap_or(0);
        let tl = client.get(&format!("/runs/{id}/timeline"))?;
        if tl.status != 200 {
            return Err(format!("/runs/{id}/timeline → {}", tl.status));
        }
        let body = tl.text();
        let series: Vec<f64> = body
            .lines()
            .filter_map(|line| {
                let event = Json::parse(line).ok()?;
                if event.get("event").and_then(Json::as_str) == Some("progress") {
                    Some(event.get("done").and_then(Json::as_u64)? as f64)
                } else {
                    None
                }
            })
            .collect();
        let bar = disp_analysis::sparkline_scaled(&series, total as f64, 60);
        let line = format!("[{bar}] {done}/{total} {state}");
        if line != last {
            println!("{line}");
            last = line;
        }
        match state.as_str() {
            "done" => return Ok(()),
            "queued" | "running" => {
                if Instant::now() > deadline {
                    return Err(format!("run {id} still {state} after 300s"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            other => return Err(format!("run {id} ended {other}")),
        }
    }
}

fn cmd_get(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut client = Client::new(&flags.addr);
    let resp = client.get(&flags.path)?;
    print!("{}", resp.text());
    if resp.status >= 400 {
        return Err(format!("GET {} → {}", flags.path, resp.status));
    }
    Ok(())
}

/// Parse the `disp_cluster_worker_trials_total{worker="..."} N` lines of
/// a `/metrics` body into `(worker, trials)` pairs.
fn parse_worker_trials(body: &str) -> Vec<(String, u64)> {
    body.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("disp_cluster_worker_trials_total{worker=\"")?;
            let (name, value) = rest.split_once("\"}")?;
            Some((name.to_string(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Fetch `/healthz` and render its identity fields for the bench header:
/// `role=… version=… uptime=…s`.
fn healthz_summary(client: &mut Client) -> Result<String, String> {
    let resp = client.get("/healthz")?;
    if resp.status != 200 {
        return Err(format!("/healthz → {}", resp.status));
    }
    let doc = resp.json()?;
    let field = |name: &str| {
        doc.get(name)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    Ok(format!(
        "role={} version={} uptime={}s",
        field("role"),
        field("version"),
        doc.get("uptime_seconds")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    ))
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;

    // Warm-up: one full submission so the cache is hot and there is a
    // completed job id to poll/fetch during the measured phase.
    let mut warm = Client::new(&flags.addr);
    let health = healthz_summary(&mut warm)?;
    if !flags.json {
        println!("disp-load: server {health}");
    }
    let warm_start = Instant::now();
    let warm_id = submit_and_wait(&mut warm, &flags)?;
    let warm_wall = warm_start.elapsed();
    drop(warm);

    let issued = AtomicUsize::new(0);
    let errors = AtomicU64::new(0);
    let kind_counts: [AtomicU64; 4] = Default::default(); // submit, status, results, metrics
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(flags.requests));

    let bench_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..flags.connections.max(1) {
            scope.spawn(|| {
                let mut client = Client::new(&flags.addr);
                let mut local: Vec<u64> = Vec::new();
                loop {
                    let i = issued.fetch_add(1, Ordering::Relaxed);
                    if i >= flags.requests {
                        break;
                    }
                    // Mixed workload, 8-request cycle: 1 submit (a pure
                    // cache hit past the warm-up), 3 status polls, 3
                    // results fetches, 1 metrics scrape.
                    let kind = match i % 8 {
                        0 => 0,
                        1..=3 => 1,
                        4..=6 => 2,
                        _ => 3,
                    };
                    let start = Instant::now();
                    let result = match kind {
                        0 => client.post_json("/runs", &submission_body(&flags)),
                        1 => client.get(&format!("/runs/{warm_id}")),
                        2 => client.get(&format!("/runs/{warm_id}/results")),
                        _ => client.get("/metrics"),
                    };
                    let elapsed = start.elapsed().as_micros() as u64;
                    kind_counts[kind].fetch_add(1, Ordering::Relaxed);
                    match result {
                        Ok(resp) if resp.status < 400 => local.push(elapsed),
                        Ok(resp) => {
                            eprintln!("disp-load: request kind {kind} → {}", resp.status);
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("disp-load: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let wall = bench_start.elapsed();

    let mut all = latencies.into_inner().unwrap();
    all.sort_unstable();
    let errors = errors.load(Ordering::Relaxed);
    if all.is_empty() {
        return Err("no request succeeded".into());
    }
    let pct = |p: f64| -> f64 {
        let idx = ((all.len() as f64 - 1.0) * p).round() as usize;
        all[idx] as f64 / 1000.0
    };
    let total = all.len();
    let throughput = total as f64 / wall.as_secs_f64();
    // --target coordinator: scrape the per-worker trial gauges so the
    // report shows how the cluster spread the warm-up grid.
    let workers: Vec<(String, u64)> = if flags.coordinator {
        let mut client = Client::new(&flags.addr);
        let resp = client.get("/metrics")?;
        if resp.status != 200 {
            return Err(format!("/metrics → {}", resp.status));
        }
        parse_worker_trials(&resp.text())
    } else {
        Vec::new()
    };
    if flags.json {
        let doc = Json::Obj(vec![
            ("server".into(), Json::Str(health.clone())),
            ("requests".into(), Json::Num(total as f64)),
            ("connections".into(), Json::Num(flags.connections as f64)),
            ("errors".into(), Json::Num(errors as f64)),
            ("elapsed_s".into(), Json::Num(wall.as_secs_f64())),
            ("req_per_s".into(), Json::Num(throughput)),
            ("p50_ms".into(), Json::Num(pct(0.50))),
            ("p99_ms".into(), Json::Num(pct(0.99))),
            ("warm_up_s".into(), Json::Num(warm_wall.as_secs_f64())),
            (
                "kinds".into(),
                Json::Obj(
                    ["submit", "status", "results", "metrics"]
                        .iter()
                        .zip(&kind_counts)
                        .map(|(name, count)| {
                            (
                                (*name).into(),
                                Json::Num(count.load(Ordering::Relaxed) as f64),
                            )
                        })
                        .collect(),
                ),
            ),
        ]);
        let doc = if flags.coordinator {
            let Json::Obj(mut fields) = doc else {
                unreachable!()
            };
            fields.push((
                "workers".into(),
                Json::Obj(
                    workers
                        .iter()
                        .map(|(name, trials)| (name.clone(), Json::Num(*trials as f64)))
                        .collect(),
                ),
            ));
            Json::Obj(fields)
        } else {
            doc
        };
        println!("{}", doc.to_string_compact());
    } else {
        println!(
            "disp-load: warm-up run {warm_id} completed in {warm_wall:.2?}; measured {total} \
             requests over {} connections in {wall:.2?}",
            flags.connections,
        );
        println!(
            "disp-load: {throughput:.1} req/s  p50 {:.2}ms  p99 {:.2}ms  (submit {}, status {}, \
             results {}, metrics {}; {errors} errors)",
            pct(0.50),
            pct(0.99),
            kind_counts[0].load(Ordering::Relaxed),
            kind_counts[1].load(Ordering::Relaxed),
            kind_counts[2].load(Ordering::Relaxed),
            kind_counts[3].load(Ordering::Relaxed),
        );
        if flags.coordinator {
            if workers.is_empty() {
                println!("disp-load: no worker has completed a trial on this coordinator yet");
            }
            for (name, trials) in &workers {
                println!("disp-load: worker {name}: {trials} trials");
            }
        }
    }
    if errors > 0 {
        return Err(format!(
            "{errors} of {} requests failed",
            total as u64 + errors
        ));
    }
    // The measured phase runs against a warm cache (the warm-up executed
    // the whole grid), so a floor here is a warm-cache throughput
    // non-regression gate, not a hardware benchmark.
    if flags.min_rps > 0.0 && throughput < flags.min_rps {
        return Err(format!(
            "warm-cache throughput regressed: {throughput:.1} req/s is below the \
             --min-rps {} floor",
            flags.min_rps
        ));
    }
    Ok(())
}
