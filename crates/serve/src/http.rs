//! Hand-rolled HTTP/1.1: request parsing and response writing over
//! `std::net::TcpStream`.
//!
//! This container builds offline, so — exactly like `disp-rng` replaced
//! `rand` and `disp_analysis::json` replaced `serde_json` — this module
//! carries the small HTTP/1.1 subset the campaign service actually needs
//! instead of pulling `hyper`:
//!
//! * request line + headers + `Content-Length` bodies, plus
//!   `Transfer-Encoding: chunked` request bodies (the cluster workers
//!   stream batch results without knowing the length up front);
//! * persistent connections (HTTP/1.1 keep-alive semantics, honoring
//!   `Connection: close`), with pipelined requests handled naturally by
//!   the leftover-buffer design;
//! * fixed-length responses and `Transfer-Encoding: chunked` streaming for
//!   the JSONL results endpoint;
//! * hard limits on header and body size so a confused client cannot make
//!   the server buffer unboundedly.
//!
//! Reads run under a short socket timeout and poll a shutdown latch, which
//! is what makes graceful drain possible: an idle keep-alive connection
//! notices shutdown within one tick instead of holding a worker forever.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Socket read timeout; also the shutdown-poll tick for idle connections.
pub const READ_TICK: Duration = Duration::from_millis(100);
/// Idle keep-alive ticks before the server closes the connection (~30 s).
const MAX_IDLE_TICKS: u32 = 300;
/// Wall-clock deadline for completing a request (first byte to last).
/// Deliberately wall-clock rather than timeout-tick based: a sender
/// dripping one byte per 50 ms never lets a read time out, yet must not
/// hold a worker past this budget either (the slow-loris shape).
const MAX_REQUEST_WALL: Duration = Duration::from_secs(10);
/// Ticks a connection that has not yet sent its first request may hold a
/// worker while other accepted connections are waiting for one (~1 s).
const PRESSURE_FIRST_REQUEST_TICKS: u32 = 10;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path without the query string (e.g. `/runs/r1/results`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn wants_keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Why [`read_request`] returned without a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Parsed,
    /// The peer closed (or went idle past the budget, or shutdown was
    /// requested while idle) — close the connection without a response.
    Closed,
}

/// Read one request from `stream` into `req_out`, using `buf` as the
/// connection's carry-over buffer (bytes of a pipelined next request stay
/// in it between calls).
///
/// `waiting` is the number of accepted connections no worker has picked up
/// yet. When it is nonzero, a request-less connection returns `Closed` so
/// its worker can serve the queue instead — immediately if `yield_idle` is
/// set (the caller has already served a request on this connection; the
/// client treats the close as ordinary keep-alive expiry and reconnects),
/// and after a short first-request grace (~1 s) otherwise, so a freshly
/// accepted connection that never speaks cannot pin a worker while honest
/// clients — who send their request within the round trip — queue behind
/// it. Without these yields, `http_threads` silent connections would hold
/// every worker for the full idle budget.
///
/// Returns `Ok(ReadOutcome::Closed)` on clean EOF / idle shutdown / idle
/// yield, and `Err(message)` on malformed input (the caller should answer
/// 400 and close).
pub fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
    waiting: &AtomicUsize,
    yield_idle: bool,
    req_out: &mut Option<Request>,
) -> Result<ReadOutcome, String> {
    *req_out = None;
    let mut idle_ticks = 0u32;
    // Set when the first byte of a request arrives; the whole request must
    // complete within MAX_REQUEST_WALL of it.
    let mut request_started: Option<std::time::Instant> = None;
    let mut chunk = [0u8; 8192];
    loop {
        // Try to parse what we already have.
        if let Some(head_end) = find_head_end(buf) {
            if head_end > MAX_HEAD_BYTES {
                return Err("request head too large".into());
            }
            let (mut req, body) = parse_head(&buf[..head_end])?;
            match body {
                BodyKind::Len(body_len) => {
                    if body_len > MAX_BODY_BYTES {
                        return Err("request body too large".into());
                    }
                    if buf.len() >= head_end + body_len {
                        req.body = buf[head_end..head_end + body_len].to_vec();
                        buf.drain(..head_end + body_len);
                        *req_out = Some(req);
                        return Ok(ReadOutcome::Parsed);
                    }
                }
                BodyKind::Chunked => {
                    if let Some((body, consumed)) = decode_chunked(&buf[head_end..])? {
                        req.body = body;
                        buf.drain(..head_end + consumed);
                        *req_out = Some(req);
                        return Ok(ReadOutcome::Parsed);
                    }
                    // Incomplete chunk stream: cap the raw buffered bytes so
                    // a sender cannot grow the carry-over buffer unboundedly
                    // by never terminating the stream.
                    if buf.len() - head_end > MAX_BODY_BYTES + MAX_HEAD_BYTES {
                        return Err("request body too large".into());
                    }
                }
            }
        } else if buf.len() > MAX_HEAD_BYTES {
            return Err("request head too large".into());
        }
        // The wall-clock deadline applies whether the sender is stalling
        // (timeouts below) or dripping bytes fast enough to dodge them.
        if !buf.is_empty() {
            let started = *request_started.get_or_insert_with(std::time::Instant::now);
            if started.elapsed() > MAX_REQUEST_WALL {
                return Err("timed out mid-request".into());
            }
        }
        // Need more bytes.
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(ReadOutcome::Closed)
                } else {
                    Err("connection closed mid-request".into())
                };
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                // Only the idle budget resets on progress; the wall-clock
                // request deadline never does.
                idle_ticks = 0;
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if buf.is_empty() {
                    // Request-less: this is where graceful drain and the
                    // yield-to-the-queue policy take effect.
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(ReadOutcome::Closed);
                    }
                    idle_ticks += 1;
                    if waiting.load(Ordering::SeqCst) > 0
                        && (yield_idle || idle_ticks > PRESSURE_FIRST_REQUEST_TICKS)
                    {
                        return Ok(ReadOutcome::Closed);
                    }
                    if idle_ticks > MAX_IDLE_TICKS {
                        return Ok(ReadOutcome::Closed);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}

/// Index just past the `\r\n\r\n` terminating the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// How the request's body is delimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyKind {
    /// `Content-Length` bytes follow the head (0 when absent).
    Len(usize),
    /// `Transfer-Encoding: chunked` — decode until the 0-chunk.
    Chunked,
}

/// Parse request line + headers; returns the request (body empty) and how
/// its body is delimited.
fn parse_head(head: &[u8]) -> Result<(Request, BodyKind), String> {
    let text = std::str::from_utf8(head).map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or("missing method")?.to_string();
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol '{version}'"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank line before \r\n\r\n
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line '{line}'"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(te) = req.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("chunked") {
            return Err(format!("unsupported transfer-encoding '{te}'"));
        }
        if req.header("content-length").is_some() {
            // Smuggling-shaped ambiguity; refuse rather than pick a winner.
            return Err("both content-length and transfer-encoding".into());
        }
        return Ok((req, BodyKind::Chunked));
    }
    let body_len = match req.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad content-length '{v}'"))?,
        None => 0,
    };
    Ok((req, BodyKind::Len(body_len)))
}

/// Decode a chunked body from the front of `buf`.
///
/// Returns `Ok(None)` when the stream is not yet complete, and
/// `Ok(Some((body, consumed)))` — decoded bytes plus how many raw bytes the
/// stream occupied — once the terminating 0-chunk (and its final CRLF) has
/// arrived. Chunk-size lines may carry extensions after `;` (ignored);
/// trailers are not supported. The decoded body is capped at
/// [`MAX_BODY_BYTES`].
fn decode_chunked(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>, String> {
    let mut body = Vec::new();
    let mut pos = 0usize;
    loop {
        // Find the CRLF ending the chunk-size line.
        let rest = &buf[pos..];
        let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
            // A size line cannot legitimately be long; bound the search.
            if rest.len() > 1024 {
                return Err("malformed chunk size line".into());
            }
            return Ok(None);
        };
        let line = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| "chunk size line is not UTF-8".to_string())?;
        let size_str = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| format!("bad chunk size '{size_str}'"))?;
        pos += line_end + 2;
        if size == 0 {
            // Final chunk: expect the terminating CRLF (no trailers).
            if buf.len() < pos + 2 {
                return Ok(None);
            }
            if &buf[pos..pos + 2] != b"\r\n" {
                return Err("trailers are not supported".into());
            }
            return Ok(Some((body, pos + 2)));
        }
        if body.len() + size > MAX_BODY_BYTES {
            return Err("request body too large".into());
        }
        if buf.len() < pos + size + 2 {
            return Ok(None);
        }
        body.extend_from_slice(&buf[pos..pos + size]);
        if &buf[pos + size..pos + size + 2] != b"\r\n" {
            return Err("chunk data not CRLF-terminated".into());
        }
        pos += size + 2;
    }
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// Write a complete fixed-length response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Begin a chunked response (the JSONL streaming path). Follow with any
/// number of [`write_chunk`] calls and one [`finish_chunks`].
pub fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())
}

/// Write one non-empty chunk.
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(()); // an empty chunk would terminate the stream
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")
}

/// Terminate a chunked response.
pub fn finish_chunks(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_head_with_query_and_headers() {
        let head = b"POST /runs?format=summary&x HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\n";
        let (req, body) = parse_head(&head[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/runs");
        assert_eq!(req.query_param("format"), Some("summary"));
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(body, BodyKind::Len(5));
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let head = b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n";
        let (req, _) = parse_head(&head[..]).unwrap();
        assert!(!req.wants_keep_alive());
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(parse_head(b"GET\r\n\r\n").is_err());
        assert!(parse_head(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(parse_head(b"GET / HTTP/1.1\r\nbroken line\r\n\r\n").is_err());
        assert!(parse_head(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
        assert!(parse_head(b"GET / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n").is_err());
        let smuggle = b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 3\r\n\r\n";
        assert!(parse_head(&smuggle[..]).is_err());
    }

    #[test]
    fn chunked_request_heads_are_accepted() {
        let head = b"POST /internal/complete HTTP/1.1\r\nTransfer-Encoding: Chunked\r\n\r\n";
        let (_, body) = parse_head(&head[..]).unwrap();
        assert_eq!(body, BodyKind::Chunked);
    }

    #[test]
    fn chunked_bodies_decode_incrementally() {
        let raw = b"5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\n\r\nNEXT";
        // Every strict prefix is incomplete; the full stream decodes.
        for cut in 0..raw.len() - 4 {
            assert_eq!(decode_chunked(&raw[..cut]).unwrap(), None, "cut={cut}");
        }
        let (body, consumed) = decode_chunked(&raw[..]).unwrap().unwrap();
        assert_eq!(body, b"hello world");
        assert_eq!(consumed, raw.len() - 4); // "NEXT" is the pipelined next request
    }

    #[test]
    fn chunked_bodies_reject_malformed_streams() {
        assert!(decode_chunked(b"zz\r\nhello\r\n").is_err());
        assert!(decode_chunked(b"5\r\nhelloXX").is_err());
        assert!(decode_chunked(b"0\r\nx-trailer: 1\r\n\r\n").is_err());
        let oversized = format!("{:x}\r\n", MAX_BODY_BYTES + 1);
        assert!(decode_chunked(oversized.as_bytes()).is_err());
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn reasons_cover_the_emitted_codes() {
        for code in [200u16, 201, 400, 404, 405, 409, 500] {
            assert!(!reason(code).is_empty(), "{code}");
        }
    }
}
