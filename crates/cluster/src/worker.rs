//! The worker loop.
//!
//! A worker is a pull client: lease a batch, serve what it can from its
//! *local* trial cache, execute the rest through the campaign engine,
//! reconcile digests with the coordinator, upload the missing records, and
//! go back for more. The loop is generic over a [`Coordinator`] transport
//! so the whole protocol is unit-testable in-process; the HTTP transport
//! lives in `disp-serve` next to its client.
//!
//! Heartbeats run on a *separate* transport (see [`heartbeat_loop`]) so a
//! long-running batch cannot starve its own lease: the main loop executes
//! trials while the heartbeat thread keeps the lease alive, and a
//! heartbeat answered `false` trips the batch's cancel flag — the engine
//! stops at the next trial boundary and the batch is abandoned to its new
//! owner.

use crate::cache::TrialCache;
use crate::proto::{
    line_digest, BatchAssignment, CompleteHeader, CompleteReply, LeaseReply, ReconcileReply,
    SlotSpec, Upload, WorkerStats,
};
use disp_analysis::{ExperimentPoint, TrialRecord};
use disp_campaign::grid::TrialSpec;
use disp_campaign::run::run_trial_batch;
use disp_core::scenario::{Registry, ScenarioSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A transport to the coordinator. Methods take `&mut self` because the
/// HTTP client owns a reconnecting connection.
pub trait Coordinator {
    /// `POST /internal/lease`. `stats` is the worker's cumulative counter
    /// snapshot, piggybacked for fleet-wide metrics (observability only).
    fn lease(&mut self, worker: &str, stats: WorkerStats) -> Result<LeaseReply, String>;
    /// `POST /internal/heartbeat`, carrying the same stats snapshot.
    fn heartbeat(
        &mut self,
        worker: &str,
        job: &str,
        batch: u64,
        stats: WorkerStats,
    ) -> Result<bool, String>;
    /// `POST /internal/reconcile`.
    fn reconcile(
        &mut self,
        worker: &str,
        job: &str,
        batch: u64,
        digests: &[Option<u64>],
    ) -> Result<ReconcileReply, String>;
    /// `POST /internal/complete`.
    fn complete(
        &mut self,
        header: &CompleteHeader,
        uploads: &[Upload],
    ) -> Result<CompleteReply, String>;
}

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// This worker's id, tagged onto every trial it uploads.
    pub id: String,
    /// Engine threads for batch execution.
    pub threads: usize,
    /// Poll delay when the coordinator has no work (upper-bounded by the
    /// coordinator's suggested `retry_ms`).
    pub poll: Duration,
}

/// What a worker did over its lifetime (printed on clean exit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Batches completed (non-stale).
    pub batches: u64,
    /// Trials executed by the engine.
    pub executed: u64,
    /// Trials served from the worker's local cache.
    pub local_hits: u64,
    /// Records uploaded to the coordinator.
    pub uploaded: u64,
    /// Batches abandoned (lost lease or stale reconcile).
    pub abandoned: u64,
}

impl WorkerSummary {
    /// The wire snapshot of these counters, piggybacked on lease and
    /// heartbeat bodies.
    pub fn stats(&self) -> WorkerStats {
        WorkerStats {
            executed: self.executed,
            local_hits: self.local_hits,
            uploaded: self.uploaded,
            batches: self.batches,
            abandoned: self.abandoned,
        }
    }
}

/// The lease the worker currently holds, shared with the heartbeat thread.
#[derive(Debug, Clone)]
struct CurrentLease {
    job: String,
    batch: u64,
    lease_ms: u64,
    /// Tripped by the heartbeat thread when the lease is lost.
    cancel: Arc<AtomicBool>,
}

/// State shared between the worker loop and its heartbeat thread.
#[derive(Debug, Default)]
pub struct WorkerShared {
    /// External stop request (SIGTERM): finish the current batch-step and
    /// exit.
    pub stop: AtomicBool,
    current: Mutex<Option<CurrentLease>>,
    /// Latest cumulative counter snapshot, published by the worker loop and
    /// read by the heartbeat thread for piggybacking.
    stats: Mutex<WorkerStats>,
}

impl WorkerShared {
    /// A fresh shared state.
    pub fn new() -> Arc<WorkerShared> {
        Arc::new(WorkerShared::default())
    }

    /// Request a stop; the loops exit at their next boundary.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Publish the worker loop's latest counter snapshot.
    pub fn publish_stats(&self, stats: WorkerStats) {
        *self.stats.lock().unwrap() = stats;
    }

    /// The latest published counter snapshot.
    pub fn stats_snapshot(&self) -> WorkerStats {
        *self.stats.lock().unwrap()
    }
}

/// Keep the current lease alive on a dedicated transport; trip its cancel
/// flag the moment the coordinator disowns it. Runs until
/// [`WorkerShared::request_stop`].
pub fn heartbeat_loop<C: Coordinator>(transport: &mut C, shared: &WorkerShared, worker: &str) {
    const TICK: Duration = Duration::from_millis(50);
    let mut since_beat = Duration::ZERO;
    while !shared.stopping() {
        std::thread::sleep(TICK);
        since_beat += TICK;
        let Some(lease) = shared.current.lock().unwrap().clone() else {
            since_beat = Duration::ZERO;
            continue;
        };
        // Beat at a third of the TTL so two beats can be lost before the
        // lease expires.
        let interval = Duration::from_millis((lease.lease_ms / 3).max(50));
        if since_beat < interval {
            continue;
        }
        since_beat = Duration::ZERO;
        match transport.heartbeat(worker, &lease.job, lease.batch, shared.stats_snapshot()) {
            Ok(true) => {}
            Ok(false) => lease.cancel.store(true, Ordering::SeqCst),
            // Transport errors are not lease loss: the main loop decides
            // what to do about a dead coordinator.
            Err(_) => {}
        }
    }
}

/// The worker main loop: lease → local lookup → execute → reconcile →
/// upload, until [`WorkerShared::request_stop`] or the coordinator drains.
/// Transport errors are retried with backoff; a coordinator that stays
/// unreachable ends the loop with an error.
pub fn run_worker_loop<C: Coordinator>(
    transport: &mut C,
    cache: &TrialCache,
    registry: &Registry,
    cfg: &WorkerConfig,
    shared: &WorkerShared,
) -> Result<WorkerSummary, String> {
    const MAX_CONSECUTIVE_ERRORS: u32 = 20;
    let mut summary = WorkerSummary::default();
    let mut errors = 0u32;
    while !shared.stopping() {
        shared.publish_stats(summary.stats());
        let reply = match transport.lease(&cfg.id, summary.stats()) {
            Ok(reply) => {
                errors = 0;
                reply
            }
            Err(e) => {
                errors += 1;
                if errors >= MAX_CONSECUTIVE_ERRORS {
                    return Err(format!("coordinator unreachable: {e}"));
                }
                sleep_checking_stop(Duration::from_millis(250), shared);
                continue;
            }
        };
        match reply {
            LeaseReply::Draining => break,
            LeaseReply::Idle { retry_ms } => {
                sleep_checking_stop(cfg.poll.min(Duration::from_millis(retry_ms)), shared);
            }
            LeaseReply::Batch(assignment) => {
                process_batch(
                    transport,
                    cache,
                    registry,
                    cfg,
                    shared,
                    assignment,
                    &mut summary,
                )?;
            }
        }
    }
    Ok(summary)
}

fn process_batch<C: Coordinator>(
    transport: &mut C,
    cache: &TrialCache,
    registry: &Registry,
    cfg: &WorkerConfig,
    shared: &WorkerShared,
    assignment: BatchAssignment,
    summary: &mut WorkerSummary,
) -> Result<(), String> {
    let cancel = Arc::new(AtomicBool::new(false));
    *shared.current.lock().unwrap() = Some(CurrentLease {
        job: assignment.job.clone(),
        batch: assignment.batch,
        lease_ms: assignment.lease_ms,
        cancel: cancel.clone(),
    });
    let outcome = drive_batch(
        transport,
        cache,
        registry,
        cfg,
        &assignment,
        &cancel,
        summary,
    );
    *shared.current.lock().unwrap() = None;
    outcome
}

fn drive_batch<C: Coordinator>(
    transport: &mut C,
    cache: &TrialCache,
    registry: &Registry,
    cfg: &WorkerConfig,
    assignment: &BatchAssignment,
    cancel: &Arc<AtomicBool>,
    summary: &mut WorkerSummary,
) -> Result<(), String> {
    let slots = &assignment.slots;
    // 1. Serve what the local cache holds; `lookup` rewrites the record's
    //    advertised repetition count to the submitting grid's value, so a
    //    local hit is byte-identical to a fresh execution.
    let mut held: Vec<Option<TrialRecord>> = slots
        .iter()
        .map(|s| cache.lookup(&s.label, s.rep, s.seed, s.repetitions))
        .collect();
    summary.local_hits += held.iter().flatten().count() as u64;
    // 2. Reconcile: advertise digests of held slots; learn what the
    //    coordinator is missing.
    let digests: Vec<Option<u64>> = held
        .iter()
        .map(|r| r.as_ref().map(|rec| line_digest(&rec.to_json_line())))
        .collect();
    let reconcile = transport.reconcile(&cfg.id, &assignment.job, assignment.batch, &digests)?;
    if reconcile.stale {
        summary.abandoned += 1;
        return Ok(());
    }
    // 3. Execute the slots that neither side holds.
    let need_exec: Vec<usize> = reconcile
        .missing
        .iter()
        .copied()
        .filter(|&i| held[i].is_none())
        .collect();
    let mut wall = vec![0u64; slots.len()];
    if !need_exec.is_empty() {
        let trials: Vec<TrialSpec> = need_exec
            .iter()
            .map(|&i| trial_of(&slots[i]))
            .collect::<Result<_, _>>()?;
        let results = run_trial_batch(trials, cfg.threads, registry, cancel);
        if results.iter().any(Option::is_none) {
            // Lease lost mid-batch; its new owner re-executes. Local work
            // already done stays cached for the next reconcile.
            for (&i, result) in need_exec.iter().zip(results) {
                if let Some((rec, _)) = result {
                    cache.insert(&rec);
                    held[i] = Some(rec);
                }
            }
            summary.abandoned += 1;
            return Ok(());
        }
        for (&i, result) in need_exec.iter().zip(results) {
            let (rec, micros) = result.expect("checked above");
            cache.insert(&rec);
            wall[i] = micros;
            summary.executed += 1;
            held[i] = Some(rec);
        }
    }
    if cancel.load(Ordering::SeqCst) {
        summary.abandoned += 1;
        return Ok(());
    }
    // 4. Upload exactly the missing slots.
    let uploads: Vec<Upload> = reconcile
        .missing
        .iter()
        .map(|&i| {
            let rec = held[i].clone().expect("missing slot resolved above");
            Upload {
                slot: i,
                wall_micros: wall[i],
                cached: wall[i] == 0,
                line: rec.to_json_line(),
                record: rec,
            }
        })
        .collect();
    let header = CompleteHeader {
        worker: cfg.id.clone(),
        job: assignment.job.clone(),
        batch: assignment.batch,
    };
    let reply = transport.complete(&header, &uploads)?;
    if reply.stale {
        summary.abandoned += 1;
    } else {
        summary.batches += 1;
        summary.uploaded += reply.accepted as u64;
    }
    Ok(())
}

/// Rebuild the executable trial from its wire slot. The label is
/// validated against the registry — the coordinator validated it at
/// submission, so a failure here means the two sides disagree about the
/// algorithm registry and the worker must not guess.
fn trial_of(slot: &SlotSpec) -> Result<TrialSpec, String> {
    let spec = ScenarioSpec::from_label(&slot.label)
        .map_err(|e| format!("bad slot label {:?}: {e}", slot.label))?;
    Ok(TrialSpec {
        section: 0,
        point: ExperimentPoint::new(spec, slot.repetitions),
        rep: slot.rep,
        seed: slot.seed,
    })
}

fn sleep_checking_stop(total: Duration, shared: &WorkerShared) {
    const TICK: Duration = Duration::from_millis(25);
    let mut slept = Duration::ZERO;
    while slept < total && !shared.stopping() {
        let step = TICK.min(total - slept);
        std::thread::sleep(step);
        slept += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::ClusterBoard;
    use crate::plan::plan_batches;
    use disp_campaign::grid::trial_seed;

    /// An in-process transport straight onto a board — the protocol without
    /// the HTTP layer (which `disp-serve` tests end to end).
    struct LocalTransport {
        board: Arc<ClusterBoard>,
        cache: Arc<TrialCache>,
    }

    impl Coordinator for LocalTransport {
        fn lease(&mut self, worker: &str, stats: WorkerStats) -> Result<LeaseReply, String> {
            self.board.note_worker_stats(worker, stats);
            Ok(self.board.lease(worker))
        }
        fn heartbeat(
            &mut self,
            worker: &str,
            job: &str,
            batch: u64,
            stats: WorkerStats,
        ) -> Result<bool, String> {
            self.board.note_worker_stats(worker, stats);
            Ok(self.board.heartbeat(worker, job, batch))
        }
        fn reconcile(
            &mut self,
            worker: &str,
            job: &str,
            batch: u64,
            digests: &[Option<u64>],
        ) -> Result<ReconcileReply, String> {
            Ok(self.board.reconcile(worker, job, batch, digests))
        }
        fn complete(
            &mut self,
            header: &CompleteHeader,
            uploads: &[Upload],
        ) -> Result<CompleteReply, String> {
            let reply = self
                .board
                .complete(&header.worker, &header.job, header.batch, uploads)?;
            if !reply.stale {
                for u in uploads {
                    self.cache.insert(&u.record);
                }
            }
            Ok(reply)
        }
    }

    fn grid_slots(campaign_seed: u64, reps: usize) -> Vec<SlotSpec> {
        [
            "star/k8/rooted/sync/probe-dfs",
            "line/k6/rooted/sync/probe-dfs",
        ]
        .iter()
        .flat_map(|label| {
            let spec = ScenarioSpec::from_label(label).unwrap();
            let point = ExperimentPoint::new(spec, reps);
            (0..reps)
                .map(|rep| SlotSpec {
                    label: point.point_id(),
                    rep,
                    seed: trial_seed(campaign_seed, &point, rep),
                    repetitions: reps,
                })
                .collect::<Vec<_>>()
        })
        .collect()
    }

    #[test]
    fn worker_drains_a_published_job_and_records_match_direct_execution() {
        let board = Arc::new(ClusterBoard::new(Duration::from_secs(60)));
        let shared_cache = Arc::new(TrialCache::in_memory());
        let slots = grid_slots(7, 2);
        board.publish("r0", plan_batches(slots.clone(), 3));
        let mut transport = LocalTransport {
            board: board.clone(),
            cache: shared_cache.clone(),
        };
        let local = TrialCache::in_memory();
        let cfg = WorkerConfig {
            id: "w1".into(),
            threads: 2,
            poll: Duration::from_millis(10),
        };
        let shared = WorkerShared::new();
        // Drain: once the board is idle, stop the loop from another thread.
        let stopper = {
            let board = board.clone();
            let shared = shared.clone();
            std::thread::spawn(move || {
                while board.wait("r0", Duration::from_millis(20))
                    == crate::board::WaitStatus::Waiting
                {}
                shared.request_stop();
            })
        };
        let summary =
            run_worker_loop(&mut transport, &local, &Registry::builtin(), &cfg, &shared).unwrap();
        stopper.join().unwrap();
        assert_eq!(summary.executed, slots.len() as u64);
        assert_eq!(summary.uploaded, slots.len() as u64);
        assert_eq!(summary.abandoned, 0);
        // Every record the coordinator now holds equals a direct execution.
        for slot in &slots {
            let rec = shared_cache
                .peek(&slot.label, slot.rep, slot.seed, slot.repetitions)
                .expect("uploaded");
            let direct =
                trial_of(slot)
                    .unwrap()
                    .point
                    .run_trial(&Registry::builtin(), slot.rep, slot.seed);
            assert_eq!(rec.to_json_line(), direct.to_json_line());
        }
    }

    #[test]
    fn local_cache_hits_upload_without_re_execution() {
        let board = Arc::new(ClusterBoard::new(Duration::from_secs(60)));
        let shared_cache = Arc::new(TrialCache::in_memory());
        let slots = grid_slots(7, 1);
        let local = TrialCache::in_memory();
        // Pre-warm the worker's local cache with the exact records.
        for slot in &slots {
            let rec =
                trial_of(slot)
                    .unwrap()
                    .point
                    .run_trial(&Registry::builtin(), slot.rep, slot.seed);
            local.insert(&rec);
        }
        board.publish("r1", plan_batches(slots.clone(), 10));
        let mut transport = LocalTransport {
            board: board.clone(),
            cache: shared_cache.clone(),
        };
        let cfg = WorkerConfig {
            id: "w1".into(),
            threads: 1,
            poll: Duration::from_millis(10),
        };
        let shared = WorkerShared::new();
        let stopper = {
            let board = board.clone();
            let shared = shared.clone();
            std::thread::spawn(move || {
                while board.wait("r1", Duration::from_millis(20))
                    == crate::board::WaitStatus::Waiting
                {}
                shared.request_stop();
            })
        };
        let summary =
            run_worker_loop(&mut transport, &local, &Registry::builtin(), &cfg, &shared).unwrap();
        stopper.join().unwrap();
        assert_eq!(summary.executed, 0);
        assert_eq!(summary.local_hits, slots.len() as u64);
        assert_eq!(summary.uploaded, slots.len() as u64);
        assert_eq!(shared_cache.len(), slots.len());
    }
}
