//! Coordinator/worker scale-out for campaign grids.
//!
//! One `disp-serve` process has a hard ceiling: its own cores. This crate
//! removes it without touching the public API. The coordinator still
//! accepts `POST /runs` unchanged; behind it, a job's grid is split into
//! deterministic trial batches ([`plan`]), published on a lease board
//! ([`board`]), and *pulled* by worker processes over four small
//! `/internal/*` endpoints ([`proto`], [`worker`]). Results flow back
//! through the promoted shared cache tier ([`cache`]) — an LRU-bounded,
//! compacting, content-addressed store of completed trials.
//!
//! The whole design leans on one invariant from the campaign layer: a
//! trial's seed is a pure function of its content identity
//! (`mix(campaign_seed, fnv1a(label), rep)`), so *where* a trial runs is
//! irrelevant — a grid sharded over four workers is byte-identical to the
//! offline CLI run, even when a worker is killed mid-batch and its lease
//! is re-executed elsewhere. The digest reconciliation handshake turns
//! that invariant into a runtime check.
//!
//! This crate is transport-agnostic: it knows the protocol and the loops,
//! but not HTTP. `disp-serve` supplies the HTTP endpoints and the client
//! transport, and wires `--role coordinator|worker`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod cache;
pub mod plan;
pub mod proto;
pub mod worker;

pub use board::{BoardStats, ClusterBoard, WaitStatus};
pub use cache::{compact_file, CacheBudget, CompactStats, TrialCache};
pub use plan::plan_batches;
pub use proto::{BatchAssignment, LeaseReply, SlotSpec, WorkerStats};
pub use worker::{Coordinator, WorkerConfig, WorkerShared, WorkerSummary};
