//! The coordinator↔worker wire protocol.
//!
//! Four POST endpoints under `/internal/*`, all JSON, all carried by the
//! same hand-rolled HTTP layer the public API uses:
//!
//! - **lease** — a worker asks for work; the coordinator answers with a
//!   batch assignment, "idle, retry later", or "draining".
//! - **heartbeat** — the holder of a lease extends it; an `ok: false`
//!   answer means the lease expired and was requeued, so the worker must
//!   abandon the batch.
//! - **reconcile** — before uploading, the worker advertises an FNV digest
//!   per slot it already holds; the coordinator answers with the slot
//!   indexes it is missing (and cross-checks digests of slots it does
//!   hold — a mismatch is a determinism violation and fails the job).
//! - **complete** — the worker streams the missing records as a chunked
//!   JSONL body: one header line, then a `{slot, wall_micros, cached}`
//!   meta line followed by the *raw record line* per trial. Shipping the
//!   original bytes (never a re-serialization) is what makes the
//!   byte-identity guarantee compositional.
//!
//! Trial seeds are uniform 64-bit values, so every `u64` on the wire uses
//! the store's lossless hex encoding ([`Json::from_u64_lossless`]).

use disp_analysis::json::Json;
use disp_analysis::TrialRecord;
use disp_rng::fnv1a;

/// One trial slot of a batch: everything a worker needs to execute the
/// trial (and everything the cache needs to address it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSpec {
    /// Canonical scenario label.
    pub label: String,
    /// Repetition index within the grid point.
    pub rep: usize,
    /// The derived trial seed.
    pub seed: u64,
    /// The submitting grid's advertised repetition count (not content,
    /// but part of the record bytes — workers must produce records that
    /// read exactly as the submitting grid's offline run would).
    pub repetitions: usize,
}

impl SlotSpec {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("rep".into(), Json::Num(self.rep as f64)),
            ("seed".into(), Json::from_u64_lossless(self.seed)),
            ("repetitions".into(), Json::Num(self.repetitions as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<SlotSpec, String> {
        Ok(SlotSpec {
            label: str_field(v, "label")?.to_string(),
            rep: usize_field(v, "rep")?,
            seed: u64_field(v, "seed")?,
            repetitions: usize_field(v, "repetitions")?,
        })
    }
}

/// A leased batch: a contiguous run of grid slots plus the lease terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchAssignment {
    /// Job id (`r0`, `r1`, … as issued by `POST /runs`).
    pub job: String,
    /// Batch index within the job's shard plan.
    pub batch: u64,
    /// Lease time-to-live; the worker must heartbeat well within it.
    pub lease_ms: u64,
    /// The trial slots, in shard-plan order.
    pub slots: Vec<SlotSpec>,
}

/// The coordinator's answer to `POST /internal/lease`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseReply {
    /// No work right now; ask again after roughly `retry_ms`.
    Idle {
        /// Suggested poll delay.
        retry_ms: u64,
    },
    /// The coordinator is shutting down; the worker should exit.
    Draining,
    /// A batch to execute.
    Batch(BatchAssignment),
}

impl LeaseReply {
    /// Render as a JSON document.
    pub fn encode(&self) -> String {
        let v = match self {
            LeaseReply::Idle { retry_ms } => Json::Obj(vec![
                ("status".into(), Json::Str("idle".into())),
                ("retry_ms".into(), Json::Num(*retry_ms as f64)),
            ]),
            LeaseReply::Draining => {
                Json::Obj(vec![("status".into(), Json::Str("draining".into()))])
            }
            LeaseReply::Batch(b) => Json::Obj(vec![
                ("status".into(), Json::Str("batch".into())),
                ("job".into(), Json::Str(b.job.clone())),
                ("batch".into(), Json::Num(b.batch as f64)),
                ("lease_ms".into(), Json::Num(b.lease_ms as f64)),
                (
                    "slots".into(),
                    Json::Arr(b.slots.iter().map(SlotSpec::to_json).collect()),
                ),
            ]),
        };
        v.to_string_compact()
    }

    /// Parse a lease reply.
    pub fn decode(text: &str) -> Result<LeaseReply, String> {
        let v = Json::parse(text)?;
        match str_field(&v, "status")? {
            "idle" => Ok(LeaseReply::Idle {
                retry_ms: u64_field(&v, "retry_ms")?,
            }),
            "draining" => Ok(LeaseReply::Draining),
            "batch" => {
                let slots = match v.get("slots") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(SlotSpec::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err("lease reply: missing slots array".into()),
                };
                Ok(LeaseReply::Batch(BatchAssignment {
                    job: str_field(&v, "job")?.to_string(),
                    batch: u64_field(&v, "batch")?,
                    lease_ms: u64_field(&v, "lease_ms")?,
                    slots,
                }))
            }
            other => Err(format!("lease reply: unknown status {other:?}")),
        }
    }
}

/// The coordinator's answer to `POST /internal/reconcile`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileReply {
    /// The batch is gone (job withdrawn, batch already completed, or a
    /// digest conflict failed the job) — drop the lease, upload nothing.
    pub stale: bool,
    /// Slot indexes the coordinator does not hold; the worker must upload
    /// exactly these.
    pub missing: Vec<usize>,
}

impl ReconcileReply {
    /// Render as a JSON document.
    pub fn encode(&self) -> String {
        Json::Obj(vec![
            ("stale".into(), Json::Bool(self.stale)),
            (
                "missing".into(),
                Json::Arr(self.missing.iter().map(|&i| Json::Num(i as f64)).collect()),
            ),
        ])
        .to_string_compact()
    }

    /// Parse a reconcile reply.
    pub fn decode(text: &str) -> Result<ReconcileReply, String> {
        let v = Json::parse(text)?;
        let stale = v
            .get("stale")
            .and_then(Json::as_bool)
            .ok_or("reconcile reply: missing stale")?;
        let missing = match v.get("missing") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|i| {
                    i.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| "reconcile reply: bad slot index".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("reconcile reply: missing missing array".into()),
        };
        Ok(ReconcileReply { stale, missing })
    }
}

/// The coordinator's answer to `POST /internal/complete`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteReply {
    /// The batch was no longer live (already completed by another worker
    /// after a lease expiry, or the job was withdrawn). Nothing was lost —
    /// records are content-addressed — but the worker gets no credit.
    pub stale: bool,
    /// Records accepted into the shared cache tier.
    pub accepted: usize,
}

impl CompleteReply {
    /// Render as a JSON document.
    pub fn encode(&self) -> String {
        Json::Obj(vec![
            ("stale".into(), Json::Bool(self.stale)),
            ("accepted".into(), Json::Num(self.accepted as f64)),
        ])
        .to_string_compact()
    }

    /// Parse a complete reply.
    pub fn decode(text: &str) -> Result<CompleteReply, String> {
        let v = Json::parse(text)?;
        Ok(CompleteReply {
            stale: v
                .get("stale")
                .and_then(Json::as_bool)
                .ok_or("complete reply: missing stale")?,
            accepted: usize_field(&v, "accepted")?,
        })
    }
}

/// One uploaded trial in a complete body.
#[derive(Debug, Clone, PartialEq)]
pub struct Upload {
    /// Slot index within the batch.
    pub slot: usize,
    /// Execution wall time in µs (0 for worker-cache hits).
    pub wall_micros: u64,
    /// Whether the worker served this from its local cache instead of
    /// executing it.
    pub cached: bool,
    /// The raw record line, exactly as the worker holds it.
    pub line: String,
    /// The parsed record (validation + cache insertion on the
    /// coordinator, digesting on the worker).
    pub record: TrialRecord,
}

/// Identity header of a complete body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompleteHeader {
    /// The uploading worker's id.
    pub worker: String,
    /// Job id.
    pub job: String,
    /// Batch index.
    pub batch: u64,
}

/// A worker's cumulative lifetime counters, piggybacked on lease and
/// heartbeat bodies so the coordinator can render fleet-wide metrics
/// without a dedicated reporting endpoint. Pure observability: the board's
/// scheduling decisions never read these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Trials executed by the worker's engine, ever.
    pub executed: u64,
    /// Trials served from the worker's local cache, ever.
    pub local_hits: u64,
    /// Records uploaded to a coordinator, ever.
    pub uploaded: u64,
    /// Batches completed (non-stale), ever.
    pub batches: u64,
    /// Batches abandoned (lost lease or stale reconcile), ever.
    pub abandoned: u64,
}

impl WorkerStats {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("executed".into(), Json::Num(self.executed as f64)),
            ("local_hits".into(), Json::Num(self.local_hits as f64)),
            ("uploaded".into(), Json::Num(self.uploaded as f64)),
            ("batches".into(), Json::Num(self.batches as f64)),
            ("abandoned".into(), Json::Num(self.abandoned as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<WorkerStats, String> {
        Ok(WorkerStats {
            executed: u64_field(v, "executed")?,
            local_hits: u64_field(v, "local_hits")?,
            uploaded: u64_field(v, "uploaded")?,
            batches: u64_field(v, "batches")?,
            abandoned: u64_field(v, "abandoned")?,
        })
    }
}

/// Render the request body for `POST /internal/lease` / `heartbeat`,
/// optionally piggybacking the worker's cumulative [`WorkerStats`].
pub fn encode_worker_ref(
    worker: &str,
    job: Option<(&str, u64)>,
    stats: Option<WorkerStats>,
) -> String {
    let mut fields = vec![("worker".into(), Json::Str(worker.to_string()))];
    if let Some((job, batch)) = job {
        fields.push(("job".into(), Json::Str(job.to_string())));
        fields.push(("batch".into(), Json::Num(batch as f64)));
    }
    if let Some(stats) = stats {
        fields.push(("stats".into(), stats.to_json()));
    }
    Json::Obj(fields).to_string_compact()
}

/// Parse a `{worker}` or `{worker, job, batch}` request body, plus the
/// optional piggybacked stats snapshot. A body without `stats` (an older
/// worker) decodes to `None` — the field is additive and backward
/// compatible.
#[allow(clippy::type_complexity)]
pub fn decode_worker_ref(
    text: &str,
) -> Result<(String, Option<(String, u64)>, Option<WorkerStats>), String> {
    let v = Json::parse(text)?;
    let worker = str_field(&v, "worker")?.to_string();
    let job = match v.get("job") {
        Some(j) => Some((
            j.as_str().ok_or("bad job id")?.to_string(),
            u64_field(&v, "batch")?,
        )),
        None => None,
    };
    let stats = match v.get("stats") {
        Some(s) => Some(WorkerStats::from_json(s)?),
        None => None,
    };
    Ok((worker, job, stats))
}

/// Render the request body for `POST /internal/reconcile`: one digest per
/// batch slot, `null` where the worker holds nothing.
pub fn encode_reconcile(worker: &str, job: &str, batch: u64, digests: &[Option<u64>]) -> String {
    Json::Obj(vec![
        ("worker".into(), Json::Str(worker.to_string())),
        ("job".into(), Json::Str(job.to_string())),
        ("batch".into(), Json::Num(batch as f64)),
        (
            "digests".into(),
            Json::Arr(
                digests
                    .iter()
                    .map(|d| match d {
                        Some(v) => Json::from_u64_lossless(*v),
                        None => Json::Null,
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string_compact()
}

/// Parse a reconcile request body.
#[allow(clippy::type_complexity)]
pub fn decode_reconcile(text: &str) -> Result<(String, String, u64, Vec<Option<u64>>), String> {
    let v = Json::parse(text)?;
    let digests = match v.get("digests") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|d| match d {
                Json::Null => Ok(None),
                other => other
                    .as_u64_lossless()
                    .map(Some)
                    .ok_or_else(|| "reconcile: bad digest".to_string()),
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("reconcile: missing digests array".into()),
    };
    Ok((
        str_field(&v, "worker")?.to_string(),
        str_field(&v, "job")?.to_string(),
        u64_field(&v, "batch")?,
        digests,
    ))
}

/// Render a complete body: the header line, then `{slot, wall_micros,
/// cached}` meta + raw record line pairs.
pub fn encode_complete_body(header: &CompleteHeader, uploads: &[Upload]) -> String {
    let mut out = Json::Obj(vec![
        ("worker".into(), Json::Str(header.worker.clone())),
        ("job".into(), Json::Str(header.job.clone())),
        ("batch".into(), Json::Num(header.batch as f64)),
    ])
    .to_string_compact();
    out.push('\n');
    for u in uploads {
        out.push_str(
            &Json::Obj(vec![
                ("slot".into(), Json::Num(u.slot as f64)),
                ("wall_micros".into(), Json::Num(u.wall_micros as f64)),
                ("cached".into(), Json::Bool(u.cached)),
            ])
            .to_string_compact(),
        );
        out.push('\n');
        out.push_str(&u.line);
        out.push('\n');
    }
    out
}

/// Parse a complete body back into its header and uploads.
pub fn decode_complete_body(body: &str) -> Result<(CompleteHeader, Vec<Upload>), String> {
    let mut lines = body.lines();
    let head = lines.next().ok_or("complete: empty body")?;
    let v = Json::parse(head)?;
    let header = CompleteHeader {
        worker: str_field(&v, "worker")?.to_string(),
        job: str_field(&v, "job")?.to_string(),
        batch: u64_field(&v, "batch")?,
    };
    let mut uploads = Vec::new();
    while let Some(meta_line) = lines.next() {
        if meta_line.trim().is_empty() {
            continue;
        }
        let meta = Json::parse(meta_line)?;
        let line = lines.next().ok_or("complete: meta line without record")?;
        let record = TrialRecord::from_json_line(line)?;
        uploads.push(Upload {
            slot: usize_field(&meta, "slot")?,
            wall_micros: u64_field(&meta, "wall_micros")?,
            cached: meta
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or("complete: missing cached")?,
            line: line.to_string(),
            record,
        });
    }
    Ok((header, uploads))
}

/// The digest the reconciliation handshake ships: FNV-1a over the exact
/// record line. Two parties that hold byte-identical records — the
/// determinism guarantee — always agree on it.
pub fn line_digest(line: &str) -> u64 {
    fnv1a(line.as_bytes())
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64_lossless)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    u64_field(v, key).map(|n| n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_analysis::ExperimentPoint;
    use disp_core::scenario::{Registry, ScenarioSpec};
    use disp_graph::generators::GraphFamily;

    fn sample_record() -> TrialRecord {
        let point = ExperimentPoint::new(ScenarioSpec::new(GraphFamily::Star, 8, "probe-dfs"), 2);
        point.run_trial(&Registry::builtin(), 0, 0xDEAD_BEEF_CAFE_F00D)
    }

    #[test]
    fn lease_replies_round_trip() {
        for reply in [
            LeaseReply::Idle { retry_ms: 250 },
            LeaseReply::Draining,
            LeaseReply::Batch(BatchAssignment {
                job: "r3".into(),
                batch: 7,
                lease_ms: 10_000,
                slots: vec![SlotSpec {
                    label: "star/k8/unrooted/sync/probe-dfs".into(),
                    rep: 1,
                    seed: u64::MAX - 5, // exercises the lossless encoding
                    repetitions: 4,
                }],
            }),
        ] {
            assert_eq!(LeaseReply::decode(&reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn worker_refs_round_trip_with_and_without_stats() {
        let stats = WorkerStats {
            executed: 12,
            local_hits: 3,
            uploaded: 15,
            batches: 4,
            abandoned: 1,
        };
        let body = encode_worker_ref("w1", Some(("r0", 2)), Some(stats));
        let (worker, job, decoded) = decode_worker_ref(&body).unwrap();
        assert_eq!(worker, "w1");
        assert_eq!(job, Some(("r0".to_string(), 2)));
        assert_eq!(decoded, Some(stats));
        // A stats-less body (an older worker) still decodes.
        let (worker, job, decoded) =
            decode_worker_ref(&encode_worker_ref("w2", None, None)).unwrap();
        assert_eq!(worker, "w2");
        assert_eq!(job, None);
        assert_eq!(decoded, None);
    }

    #[test]
    fn reconcile_round_trips_nulls_and_big_digests() {
        let body = encode_reconcile("w1", "r0", 2, &[Some(u64::MAX), None, Some(7)]);
        let (worker, job, batch, digests) = decode_reconcile(&body).unwrap();
        assert_eq!((worker.as_str(), job.as_str(), batch), ("w1", "r0", 2));
        assert_eq!(digests, vec![Some(u64::MAX), None, Some(7)]);
        assert_eq!(
            ReconcileReply::decode(
                &ReconcileReply {
                    stale: false,
                    missing: vec![0, 2]
                }
                .encode()
            )
            .unwrap()
            .missing,
            vec![0, 2]
        );
    }

    #[test]
    fn complete_bodies_preserve_record_bytes_exactly() {
        let rec = sample_record();
        let line = rec.to_json_line();
        let header = CompleteHeader {
            worker: "w2".into(),
            job: "r1".into(),
            batch: 0,
        };
        let uploads = vec![Upload {
            slot: 3,
            wall_micros: 1234,
            cached: false,
            line: line.clone(),
            record: rec,
        }];
        let body = encode_complete_body(&header, &uploads);
        let (h, parsed) = decode_complete_body(&body).unwrap();
        assert_eq!(h, header);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].line, line);
        assert_eq!(parsed[0].record.to_json_line(), line);
        assert_eq!(line_digest(&parsed[0].line), line_digest(&line));
        assert_eq!(
            CompleteReply::decode(
                &CompleteReply {
                    stale: false,
                    accepted: 1
                }
                .encode()
            )
            .unwrap(),
            CompleteReply {
                stale: false,
                accepted: 1
            }
        );
    }

    #[test]
    fn record_parse_reserialize_is_byte_stable() {
        // The coordinator parses uploaded lines and later re-serializes
        // them from its cache; byte-identity of the cluster path rests on
        // this round trip being exact.
        let rec = sample_record();
        let line = rec.to_json_line();
        let reparsed = TrialRecord::from_json_line(&line).unwrap();
        assert_eq!(reparsed.to_json_line(), line);
    }
}
