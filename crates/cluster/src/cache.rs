//! The content-addressed trial cache — the cluster's shared storage tier.
//!
//! PR 2 made every trial a pure function of its *content identity* — the
//! canonical scenario label, the campaign seed and the repetition index:
//! the derived trial seed is `mix(campaign_seed, fnv1a(label), rep)`
//! ([`disp_campaign::grid::trial_seed`]) and the outcome is a deterministic
//! function of `(label, trial seed)`. That makes trial results perfectly
//! cacheable across submissions: any two requests that mention the same
//! `(label, seed, rep)` — in the same job, in overlapping jobs, or days
//! apart — denote byte-identical records.
//!
//! The cache address is exactly that content triple, carried as
//! `(label, rep, derived trial seed)` — the form every [`TrialRecord`]
//! already stores, so the cache re-derives its own keys from its persisted
//! records (content-addressing in both directions). Persistence layers over
//! the same JSONL trial log the campaign store uses: one record per line,
//! flushed per insert, torn tails tolerated on load, duplicate keys
//! collapsed. A cache directory is therefore inspectable (and greppable)
//! with the exact tooling that reads campaign checkpoints.
//!
//! The one field of a record that is *not* content is the grid's
//! advertised repetition count (`"repetitions"`), which only describes the
//! submitting grid. [`TrialCache::lookup`] rewrites it to the requesting
//! grid's value, so a cache hit is byte-identical to what a fresh offline
//! run of the requesting grid would have produced.
//!
//! # The promoted tier (PR 7)
//!
//! Serving a cluster promotes the cache from "a map with a log" to a real
//! storage tier:
//!
//! - **Budgets.** The in-memory index is a bounded LRU under a
//!   [`CacheBudget`] (entry count *and* byte size). Eviction drops the
//!   least-recently-used record from memory only — the on-disk log keeps
//!   it, and the cluster's digest reconciliation lets a worker re-supply an
//!   evicted record without re-executing it.
//! - **Bounded log growth.** Appends are suppressed for keys already on
//!   disk (tracked by a key-digest set), so repeated overlapping
//!   submissions no longer grow `cache.jsonl` without bound.
//! - **Compaction.** [`TrialCache::compact`] (online) and [`compact_file`]
//!   (offline, `disp-serve compact`) rewrite the live entries — first
//!   occurrence per key, original bytes preserved — to `cache.jsonl.new`
//!   and atomically rename it over the log. The rename is the commit
//!   point: a crash before it leaves the old log intact, a stale
//!   `cache.jsonl.new` is removed on open. Logs whose dead-entry ratio
//!   exceeds one half are compacted automatically on open.

use disp_analysis::jsonl;
use disp_analysis::TrialRecord;
use disp_rng::{fnv1a, mix};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The content identity of a trial.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Canonical scenario label.
    label: String,
    /// Repetition index within the grid point.
    rep: usize,
    /// The derived trial seed (a pure function of campaign seed + label +
    /// rep; included so grids run under different campaign seeds never
    /// alias).
    seed: u64,
}

impl CacheKey {
    /// A 64-bit digest of the key, used by the on-disk key set (and cheap
    /// enough to keep one per persisted line).
    fn digest(&self) -> u64 {
        mix(&[fnv1a(self.label.as_bytes()), self.rep as u64, self.seed])
    }
}

/// Budgets for the in-memory index and the compaction trigger.
#[derive(Debug, Clone, Copy)]
pub struct CacheBudget {
    /// Maximum records held in memory (≥ 1 is always retained).
    pub max_entries: usize,
    /// Maximum total JSONL bytes held in memory (≥ 1 record is always
    /// retained, even when it alone exceeds the budget).
    pub max_bytes: usize,
    /// Logs shorter than this are never auto-compacted (compacting a
    /// 10-line log saves nothing and churns the disk).
    pub compact_min_lines: u64,
}

impl Default for CacheBudget {
    fn default() -> CacheBudget {
        CacheBudget {
            max_entries: 1 << 20,
            max_bytes: 512 << 20,
            compact_min_lines: 1024,
        }
    }
}

/// Statistics from one compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Parseable lines read from the old log.
    pub lines_in: u64,
    /// Live (first-occurrence) lines written to the new log.
    pub lines_kept: u64,
    /// Bytes of the old log.
    pub bytes_in: u64,
    /// Bytes of the new log.
    pub bytes_out: u64,
}

/// One in-memory record plus its LRU bookkeeping.
#[derive(Debug)]
struct Entry {
    rec: TrialRecord,
    /// Length of the record's JSONL line (the byte-budget unit).
    bytes: usize,
    /// Stamp of this entry's newest position in the LRU queue; queue
    /// positions with older stamps are stale and skipped.
    stamp: u64,
}

/// The bounded in-memory index.
#[derive(Debug, Default)]
struct MemIndex {
    entries: HashMap<CacheKey, Entry>,
    /// `(stamp, key)` pairs, oldest first. Touches push a fresh stamp
    /// instead of removing the old position (lazy invalidation).
    lru: VecDeque<(u64, CacheKey)>,
    total_bytes: usize,
    next_stamp: u64,
}

impl MemIndex {
    fn touch(&mut self, key: &CacheKey) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(e) = self.entries.get_mut(key) {
            e.stamp = stamp;
            self.lru.push_back((stamp, key.clone()));
        }
    }

    /// Insert `rec` under `key` and evict LRU entries until the budget
    /// holds again. Returns the number of evictions.
    fn insert(
        &mut self,
        key: CacheKey,
        rec: TrialRecord,
        bytes: usize,
        budget: &CacheBudget,
    ) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.lru.push_back((stamp, key.clone()));
        self.total_bytes += bytes;
        self.entries.insert(key, Entry { rec, bytes, stamp });
        let mut evicted = 0;
        while (self.entries.len() > budget.max_entries || self.total_bytes > budget.max_bytes)
            && self.entries.len() > 1
        {
            let Some((stamp, key)) = self.lru.pop_front() else {
                break;
            };
            let live = self.entries.get(&key).is_some_and(|e| e.stamp == stamp);
            if live {
                let e = self.entries.remove(&key).unwrap();
                self.total_bytes -= e.bytes;
                evicted += 1;
            }
        }
        // Lazy invalidation lets the queue accumulate stale positions;
        // prune when it clearly dominates the live set.
        if self.lru.len() > 2 * self.entries.len() + 64 {
            let entries = &self.entries;
            self.lru
                .retain(|(stamp, key)| entries.get(key).is_some_and(|e| e.stamp == *stamp));
        }
        evicted
    }
}

/// The append-only persistence layer.
#[derive(Debug)]
struct DiskLog {
    writer: BufWriter<File>,
    path: PathBuf,
    /// Parseable lines currently in the log.
    lines: u64,
    /// Lines whose key already appeared earlier in the log (compaction
    /// would drop them).
    dead: u64,
    /// Key digests of every line in the log — the append suppressor.
    keys: HashSet<u64>,
}

/// A thread-safe, optionally persistent map from trial content identity to
/// the completed [`TrialRecord`], with an LRU-bounded memory index and a
/// compacting JSONL log.
#[derive(Debug)]
pub struct TrialCache {
    mem: Mutex<MemIndex>,
    /// Append-only JSONL log (absent for a purely in-memory cache).
    disk: Option<Mutex<DiskLog>>,
    budget: CacheBudget,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl TrialCache {
    /// An in-memory cache (tests, `--cache-dir`-less servers) under the
    /// default budget.
    pub fn in_memory() -> TrialCache {
        TrialCache::in_memory_with(CacheBudget::default())
    }

    /// An in-memory cache under an explicit budget.
    pub fn in_memory_with(budget: CacheBudget) -> TrialCache {
        TrialCache {
            mem: Mutex::new(MemIndex::default()),
            disk: None,
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Open (or create) a persistent cache in `dir` under the default
    /// budget. See [`TrialCache::open_with`].
    pub fn open(dir: &Path) -> Result<TrialCache, String> {
        TrialCache::open_with(dir, CacheBudget::default())
    }

    /// Open (or create) a persistent cache in `dir`, loading records from
    /// `dir/cache.jsonl` into the memory index (oldest evicted first when
    /// the budget is exceeded). Torn tails — a kill mid-append — are
    /// tolerated exactly as in the campaign store; duplicate keys collapse
    /// to the first occurrence (all occurrences are byte-identical by
    /// construction, so the choice is immaterial). A stale
    /// `cache.jsonl.new` from a compaction that died before its rename is
    /// removed — the rename is the commit point, so the old log is still
    /// the authoritative one. Logs with a dead-entry ratio above one half
    /// are compacted before the appender opens.
    pub fn open_with(dir: &Path, budget: CacheBudget) -> Result<TrialCache, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let path = dir.join("cache.jsonl");
        let stale = dir.join("cache.jsonl.new");
        if stale.exists() {
            std::fs::remove_file(&stale)
                .map_err(|e| format!("remove stale {}: {e}", stale.display()))?;
        }
        let mut mem = MemIndex::default();
        let mut keys = HashSet::new();
        let mut lines = 0u64;
        let mut dead = 0u64;
        let mut evictions = 0u64;
        if path.exists() {
            let file = File::open(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            for line in BufReader::new(file).lines() {
                let line = line.map_err(|e| format!("read {}: {e}", path.display()))?;
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                // Malformed lines (torn tails) are skipped, like the
                // campaign store's ingest.
                let Ok(rec) = TrialRecord::from_json_line(trimmed) else {
                    continue;
                };
                lines += 1;
                let key = key_of(&rec);
                if !keys.insert(key.digest()) {
                    dead += 1;
                    continue;
                }
                let bytes = rec.to_json_line().len();
                evictions += mem.insert(key, rec, bytes, &budget);
            }
        }
        if lines >= budget.compact_min_lines && dead * 2 > lines {
            let stats = compact_file(&path)?;
            lines = stats.lines_kept;
            dead = 0;
        }
        // Same torn-tail repair as the campaign store's appender (shared
        // helper: a kill mid-append must not merge the next record into
        // the torn line).
        let file = jsonl::open_append_with_repair(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        Ok(TrialCache {
            mem: Mutex::new(mem),
            disk: Some(Mutex::new(DiskLog {
                writer: BufWriter::new(file),
                path,
                lines,
                dead,
                keys,
            })),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(evictions),
        })
    }

    /// Look up the record for `(label, rep, seed)`, counting a hit or miss
    /// and refreshing the entry's LRU position.
    ///
    /// On a hit the returned record's advertised repetition count is
    /// rewritten to `repetitions` (see the module docs), making the record
    /// byte-identical to a fresh run of the requesting grid.
    pub fn lookup(
        &self,
        label: &str,
        rep: usize,
        seed: u64,
        repetitions: usize,
    ) -> Option<TrialRecord> {
        let key = CacheKey {
            label: label.to_string(),
            rep,
            seed,
        };
        let found = {
            let mut mem = self.mem.lock().unwrap();
            let found = mem.entries.get(&key).map(|e| e.rec.clone());
            if found.is_some() {
                mem.touch(&key);
            }
            found
        };
        match found {
            Some(mut rec) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                rec.point.repetitions = repetitions;
                Some(rec)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// [`TrialCache::lookup`] without the observability side effects: no
    /// hit/miss counting, no LRU refresh. Used by the cluster plumbing
    /// (reconciliation, result assembly) so operator-facing counters keep
    /// meaning "a submission asked for this trial".
    pub fn peek(
        &self,
        label: &str,
        rep: usize,
        seed: u64,
        repetitions: usize,
    ) -> Option<TrialRecord> {
        let key = CacheKey {
            label: label.to_string(),
            rep,
            seed,
        };
        let found = self
            .mem
            .lock()
            .unwrap()
            .entries
            .get(&key)
            .map(|e| e.rec.clone());
        found.map(|mut rec| {
            rec.point.repetitions = repetitions;
            rec
        })
    }

    /// Insert a completed record (no-op if its key is already in memory)
    /// and, for persistent caches, append + flush it to `cache.jsonl` so a
    /// kill loses at most in-flight trials. Keys already on disk are not
    /// appended again — the suppression that keeps repeated overlapping
    /// submissions from growing the log without bound.
    pub fn insert(&self, record: &TrialRecord) {
        let key = key_of(record);
        let line = record.to_json_line();
        {
            let mut mem = self.mem.lock().unwrap();
            if mem.entries.contains_key(&key) {
                return;
            }
            let evicted = mem.insert(key.clone(), record.clone(), line.len(), &self.budget);
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        if let Some(disk) = &self.disk {
            let mut d = disk.lock().unwrap();
            if d.keys.insert(key.digest()) {
                // An unwritable cache should abort loudly, like the store.
                writeln!(d.writer, "{line}").expect("append cache record");
                d.writer.flush().expect("flush cache record");
                d.lines += 1;
            }
            if d.lines >= self.budget.compact_min_lines && d.dead * 2 > d.lines {
                compact_disk(&mut d).expect("compact cache log");
            }
        }
    }

    /// Compact the on-disk log now: rewrite live entries (first occurrence
    /// per key, original bytes preserved) to `cache.jsonl.new` and rename
    /// it over `cache.jsonl`. Readers holding the old file keep a
    /// consistent snapshot; readers opening the path see either the old or
    /// the new complete log, never a partial one. Errors for an in-memory
    /// cache.
    pub fn compact(&self) -> Result<CompactStats, String> {
        let disk = self
            .disk
            .as_ref()
            .ok_or_else(|| "in-memory cache has no log to compact".to_string())?;
        let mut d = disk.lock().unwrap();
        compact_disk(&mut d)
    }

    /// Number of records in the memory index.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().entries.len()
    }

    /// Whether the memory index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total JSONL bytes of the records in the memory index.
    pub fn bytes(&self) -> usize {
        self.mem.lock().unwrap().total_bytes
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records evicted from the memory index (including load-time
    /// evictions when the log exceeds the budget).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Parseable lines currently in the on-disk log (0 for in-memory).
    pub fn disk_lines(&self) -> u64 {
        self.disk.as_ref().map_or(0, |d| d.lock().unwrap().lines)
    }
}

fn key_of(rec: &TrialRecord) -> CacheKey {
    CacheKey {
        label: rec.point.point_id(),
        rep: rec.rep,
        seed: rec.seed,
    }
}

/// Compact while holding the disk lock, then swap in the fresh appender
/// and reset the log accounting.
fn compact_disk(d: &mut DiskLog) -> Result<CompactStats, String> {
    d.writer
        .flush()
        .map_err(|e| format!("flush before compact: {e}"))?;
    let (stats, keys) = compact_path(&d.path)?;
    let file = jsonl::open_append_with_repair(&d.path)
        .map_err(|e| format!("reopen {}: {e}", d.path.display()))?;
    d.writer = BufWriter::new(file);
    d.lines = stats.lines_kept;
    d.dead = 0;
    d.keys = keys;
    Ok(stats)
}

/// Offline compaction of a cache log (the `disp-serve compact` CLI):
/// stream `path`, keep the first occurrence of every key with its original
/// bytes, drop duplicates and torn/malformed lines, write the survivors to
/// `path.new` and atomically rename it over `path`. The rename is the
/// commit point — a crash at any earlier moment leaves the old log
/// untouched (and the leftover `path.new` is removed on the next open or
/// compaction).
pub fn compact_file(path: &Path) -> Result<CompactStats, String> {
    compact_path(path).map(|(stats, _)| stats)
}

fn compact_path(path: &Path) -> Result<(CompactStats, HashSet<u64>), String> {
    let file = File::open(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let new_path = path.with_extension("jsonl.new");
    let out = File::create(&new_path).map_err(|e| format!("create {}: {e}", new_path.display()))?;
    let mut writer = BufWriter::new(out);
    let mut keys = HashSet::new();
    let mut stats = CompactStats {
        lines_in: 0,
        lines_kept: 0,
        bytes_in: 0,
        bytes_out: 0,
    };
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| format!("read {}: {e}", path.display()))?;
        stats.bytes_in += line.len() as u64 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(rec) = TrialRecord::from_json_line(trimmed) else {
            continue; // torn tail or foreign junk: compaction drops it
        };
        stats.lines_in += 1;
        if !keys.insert(key_of(&rec).digest()) {
            continue;
        }
        // The *original* bytes, not a re-serialization: live entries
        // survive compaction byte-identically by construction.
        writeln!(writer, "{trimmed}").map_err(|e| format!("write {}: {e}", new_path.display()))?;
        stats.lines_kept += 1;
        stats.bytes_out += trimmed.len() as u64 + 1;
    }
    writer
        .flush()
        .map_err(|e| format!("flush {}: {e}", new_path.display()))?;
    writer
        .into_inner()
        .map_err(|e| format!("flush {}: {e}", new_path.display()))?
        .sync_all()
        .map_err(|e| format!("sync {}: {e}", new_path.display()))?;
    std::fs::rename(&new_path, path)
        .map_err(|e| format!("rename {} over {}: {e}", new_path.display(), path.display()))?;
    Ok((stats, keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_analysis::ExperimentPoint;
    use disp_campaign::grid::trial_seed;
    use disp_core::scenario::{Registry, ScenarioSpec};
    use disp_graph::generators::GraphFamily;
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "disp-cluster-cache-test-{}-{tag}",
            std::process::id()
        ))
    }

    fn run_one(k: usize, reps: usize, campaign_seed: u64, rep: usize) -> TrialRecord {
        let point =
            ExperimentPoint::new(ScenarioSpec::new(GraphFamily::Star, k, "probe-dfs"), reps);
        let seed = trial_seed(campaign_seed, &point, rep);
        point.run_trial(&Registry::builtin(), rep, seed)
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let cache = TrialCache::in_memory();
        let rec = run_one(8, 2, 7, 0);
        assert!(cache
            .lookup(&rec.point.point_id(), rec.rep, rec.seed, 2)
            .is_none());
        cache.insert(&rec);
        let hit = cache
            .lookup(&rec.point.point_id(), rec.rep, rec.seed, 2)
            .unwrap();
        assert_eq!(hit.to_json_line(), rec.to_json_line());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lookup_rewrites_the_advertised_repetition_count() {
        let cache = TrialCache::in_memory();
        let rec = run_one(8, 2, 7, 0);
        cache.insert(&rec);
        // A later grid mentions the same trial but asks for 5 repetitions:
        // the served record must read exactly as that grid's fresh run.
        let hit = cache
            .lookup(&rec.point.point_id(), rec.rep, rec.seed, 5)
            .unwrap();
        let mut fresh = rec.clone();
        fresh.point.repetitions = 5;
        assert_eq!(hit.to_json_line(), fresh.to_json_line());
    }

    #[test]
    fn peek_serves_without_counting_or_touching() {
        let cache = TrialCache::in_memory();
        let rec = run_one(8, 2, 7, 0);
        cache.insert(&rec);
        let got = cache
            .peek(&rec.point.point_id(), rec.rep, rec.seed, 2)
            .unwrap();
        assert_eq!(got.to_json_line(), rec.to_json_line());
        assert!(cache.peek("nope", 0, 1, 2).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn different_campaign_seeds_do_not_alias() {
        let cache = TrialCache::in_memory();
        let a = run_one(8, 2, 7, 0);
        cache.insert(&a);
        let b = run_one(8, 2, 8, 0); // same label+rep, different campaign seed
        assert!(cache
            .lookup(&b.point.point_id(), b.rep, b.seed, 2)
            .is_none());
    }

    #[test]
    fn persistent_cache_reloads_and_tolerates_torn_tails() {
        let dir = tmp_dir("persist");
        std::fs::remove_dir_all(&dir).ok();
        let rec = run_one(8, 2, 7, 0);
        let other = run_one(12, 2, 7, 1);
        {
            let cache = TrialCache::open(&dir).unwrap();
            cache.insert(&rec);
            cache.insert(&other);
            cache.insert(&other); // duplicate insert is a no-op
        }
        // Simulate a kill mid-append.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("cache.jsonl"))
                .unwrap();
            write!(f, "{{\"scenario\":").unwrap();
        }
        let cache = TrialCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        let hit = cache
            .lookup(&rec.point.point_id(), rec.rep, rec.seed, 2)
            .unwrap();
        assert_eq!(hit.to_json_line(), rec.to_json_line());
        // And the reloaded cache repairs the torn tail before appending, so
        // a new record lands on its own line instead of merging into the
        // torn one.
        let third = run_one(16, 2, 7, 0);
        cache.insert(&third);
        let reloaded = TrialCache::open(&dir).unwrap();
        assert_eq!(reloaded.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_eviction_respects_the_entry_budget() {
        let budget = CacheBudget {
            max_entries: 2,
            ..CacheBudget::default()
        };
        let cache = TrialCache::in_memory_with(budget);
        let a = run_one(8, 2, 7, 0);
        let b = run_one(12, 2, 7, 0);
        let c = run_one(16, 2, 7, 0);
        cache.insert(&a);
        cache.insert(&b);
        // Touch `a` so `b` is now the least recently used.
        assert!(cache
            .lookup(&a.point.point_id(), a.rep, a.seed, 2)
            .is_some());
        cache.insert(&c);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.peek(&a.point.point_id(), a.rep, a.seed, 2).is_some());
        assert!(cache.peek(&b.point.point_id(), b.rep, b.seed, 2).is_none());
        assert!(cache.peek(&c.point.point_id(), c.rep, c.seed, 2).is_some());
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget_but_keeps_one_entry() {
        let a = run_one(8, 2, 7, 0);
        let b = run_one(12, 2, 7, 0);
        let one_line = a.to_json_line().len();
        let budget = CacheBudget {
            // Room for one record, not two.
            max_bytes: one_line + one_line / 2,
            ..CacheBudget::default()
        };
        let cache = TrialCache::in_memory_with(budget);
        cache.insert(&a);
        assert_eq!(cache.len(), 1); // a lone over-budget record is retained
        cache.insert(&b);
        assert_eq!(cache.len(), 1);
        assert!(cache.evictions() >= 1);
        assert!(cache.bytes() <= budget.max_bytes);
        assert!(cache.peek(&b.point.point_id(), b.rep, b.seed, 2).is_some());
    }

    #[test]
    fn appends_are_suppressed_for_keys_already_on_disk() {
        let dir = tmp_dir("suppress");
        std::fs::remove_dir_all(&dir).ok();
        let rec = run_one(8, 2, 7, 0);
        {
            let cache = TrialCache::open(&dir).unwrap();
            cache.insert(&rec);
            assert_eq!(cache.disk_lines(), 1);
        }
        // A tiny memory budget forces the record out of memory; re-insert
        // must not append a duplicate line ("repeated overlapping
        // submissions" in miniature).
        let budget = CacheBudget {
            max_entries: 1,
            ..CacheBudget::default()
        };
        let other = run_one(12, 2, 7, 0);
        let cache = TrialCache::open_with(&dir, budget).unwrap();
        cache.insert(&other); // evicts `rec` from memory
        assert!(cache
            .peek(&rec.point.point_id(), rec.rep, rec.seed, 2)
            .is_none());
        cache.insert(&rec); // back in memory, but already on disk
        assert_eq!(cache.disk_lines(), 2);
        let text = std::fs::read_to_string(dir.join("cache.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_live_entries_byte_identically() {
        let dir = tmp_dir("compact-bytes");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let a = run_one(8, 2, 7, 0);
        let b = run_one(12, 2, 7, 1);
        let path = dir.join("cache.jsonl");
        // A dirty legacy log: duplicates interleaved, torn tail at the end.
        let mut text = String::new();
        for line in [
            a.to_json_line(),
            b.to_json_line(),
            a.to_json_line(),
            b.to_json_line(),
            a.to_json_line(),
        ] {
            text.push_str(&line);
            text.push('\n');
        }
        text.push_str("{\"scenario\":");
        std::fs::write(&path, &text).unwrap();
        let stats = compact_file(&path).unwrap();
        assert_eq!((stats.lines_in, stats.lines_kept), (5, 2));
        let compacted = std::fs::read_to_string(&path).unwrap();
        let expected = format!("{}\n{}\n", a.to_json_line(), b.to_json_line());
        assert_eq!(compacted, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dirty_logs_auto_compact_on_open() {
        let dir = tmp_dir("auto-compact");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let rec = run_one(8, 2, 7, 0);
        let line = rec.to_json_line();
        let path = dir.join("cache.jsonl");
        // 1 live key, 99 dead duplicates — over the 50% dead ratio and the
        // (lowered) minimum size.
        let mut text = String::new();
        for _ in 0..100 {
            text.push_str(&line);
            text.push('\n');
        }
        std::fs::write(&path, &text).unwrap();
        let budget = CacheBudget {
            compact_min_lines: 10,
            ..CacheBudget::default()
        };
        let cache = TrialCache::open_with(&dir, budget).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.disk_lines(), 1);
        drop(cache);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, format!("{line}\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_mid_compaction_recovers_because_rename_is_the_commit_point() {
        let dir = tmp_dir("mid-compact");
        std::fs::remove_dir_all(&dir).ok();
        let rec = run_one(8, 2, 7, 0);
        {
            let cache = TrialCache::open(&dir).unwrap();
            cache.insert(&rec);
        }
        // A compaction that died before its rename leaves a partial
        // cache.jsonl.new behind; the old log is still authoritative.
        std::fs::write(dir.join("cache.jsonl.new"), "{\"scenario\":").unwrap();
        let cache = TrialCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(!dir.join("cache.jsonl.new").exists());
        let hit = cache
            .peek(&rec.point.point_id(), rec.rep, rec.seed, 2)
            .unwrap();
        assert_eq!(hit.to_json_line(), rec.to_json_line());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_file_during_online_compaction() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let dir = tmp_dir("online-compact");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let a = run_one(8, 2, 7, 0);
        let b = run_one(12, 2, 7, 1);
        let path = dir.join("cache.jsonl");
        let mut text = String::new();
        for _ in 0..50 {
            text.push_str(&a.to_json_line());
            text.push('\n');
            text.push_str(&b.to_json_line());
            text.push('\n');
        }
        std::fs::write(&path, &text).unwrap();
        let cache = Arc::new(TrialCache::open(&dir).unwrap());
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let (path, stop) = (path.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let text = std::fs::read_to_string(&path).unwrap();
                    // Every snapshot must be a whole log: all lines parse
                    // (the writer flushes per insert and compaction
                    // publishes by rename, so no torn state is visible).
                    for line in text.lines() {
                        TrialRecord::from_json_line(line).unwrap();
                    }
                    snapshots += 1;
                }
                snapshots
            })
        };
        for round in 0..20 {
            let stats = cache.compact().unwrap();
            if round == 0 {
                assert_eq!(stats.lines_kept, 2);
            }
            // Interleave appends so compaction runs against a log that is
            // also being written.
            let fresh = run_one(8 + round, 2, 99, 0);
            cache.insert(&fresh);
        }
        stop.store(true, Ordering::Relaxed);
        let snapshots = reader.join().unwrap();
        assert!(snapshots > 0, "reader never sampled the file");
        std::fs::remove_dir_all(&dir).ok();
    }
}
