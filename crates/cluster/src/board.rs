//! The coordinator's lease board.
//!
//! The board owns the cluster's scheduling state: which batches are
//! pending, which are leased (and until when), which are done, and the
//! records uploaded for each job. Workers *pull* — the board never pushes
//! work — so load balance falls out of scheduling, and a worker that dies
//! simply stops heartbeating: its lease expires and the batch returns to
//! the pending queue to be re-executed by someone else. Nothing is lost,
//! because batches are content-addressed and re-execution is
//! deterministic.
//!
//! Uploaded records are held per job (not only in the shared cache) so
//! result assembly cannot be broken by cache eviction: the job store is
//! bounded by the job's own grid — exactly the memory the local executor
//! would have used — and is dropped when the job settles.
//!
//! The digest handshake doubles as a *production determinism check*: when
//! a batch is executed twice (lease expiry + requeue), the second worker's
//! reconcile digests are compared against the first worker's stored
//! records. A mismatch means two workers disagreed on the bytes of the
//! same seeded trial — the one invariant the whole system rests on — and
//! fails the job loudly rather than silently shipping either version.

use crate::proto::{
    line_digest, BatchAssignment, CompleteReply, LeaseReply, ReconcileReply, SlotSpec, Upload,
    WorkerStats,
};
use disp_analysis::TrialRecord;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Workers not heard from within this window drop out of the
/// `cluster_workers` gauge (they are never forgotten for accounting).
const WORKER_VISIBLE: Duration = Duration::from_secs(10);

/// Suggested worker poll delay when the board has no pending work.
const IDLE_RETRY_MS: u64 = 200;

/// Content identity of a slot — the key of a job's record store.
type SlotKey = (String, usize, u64);

fn slot_key(s: &SlotSpec) -> SlotKey {
    (s.label.clone(), s.rep, s.seed)
}

fn record_key(r: &TrialRecord) -> SlotKey {
    (r.point.point_id(), r.rep, r.seed)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Pending,
    Leased { worker: String, deadline: Instant },
    Done,
}

#[derive(Debug)]
struct BatchEntry {
    slots: Vec<SlotSpec>,
    phase: Phase,
}

#[derive(Debug)]
struct JobShards {
    batches: Vec<BatchEntry>,
    /// Batches not yet `Done`.
    remaining: usize,
    /// Set on a digest conflict; terminal.
    failed: Option<String>,
    /// Uploaded records, keyed by slot content identity. The raw line is
    /// kept alongside for digest verification.
    records: HashMap<SlotKey, (TrialRecord, String)>,
}

#[derive(Debug)]
struct WorkerInfo {
    last_seen: Instant,
    trials_done: u64,
    /// Latest cumulative counter snapshot the worker piggybacked on a
    /// lease or heartbeat (zero until one arrives).
    stats: WorkerStats,
}

#[derive(Debug, Default)]
struct Inner {
    jobs: HashMap<String, JobShards>,
    /// `(job, batch)` hand-out queue, grid order; entries are lazily
    /// skipped when their batch is no longer pending.
    pending: VecDeque<(String, u64)>,
    workers: HashMap<String, WorkerInfo>,
    leases_expired: u64,
}

/// What `wait` observed about a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitStatus {
    /// Every batch is done.
    Done,
    /// The job failed (digest conflict — a determinism violation).
    Failed(String),
    /// Still in flight.
    Waiting,
}

/// Point-in-time board statistics for `/metrics`.
#[derive(Debug, Clone, Default)]
pub struct BoardStats {
    /// Workers heard from in the last visibility window.
    pub workers: usize,
    /// Of those, workers currently holding at least one lease.
    pub workers_busy: usize,
    /// Batches currently leased.
    pub leases_active: usize,
    /// Leases that expired and were requeued, ever.
    pub leases_expired: u64,
    /// Trials uploaded per worker (name-sorted), ever.
    pub per_worker_trials: Vec<(String, u64)>,
    /// Fleet-wide totals: the sum of every worker's latest piggybacked
    /// counter snapshot (workers that never sent one contribute zeros).
    pub fleet: WorkerStats,
}

/// The coordinator's scheduling state. All methods are `&self`; the board
/// is shared between the HTTP handlers and the job executor.
#[derive(Debug)]
pub struct ClusterBoard {
    inner: Mutex<Inner>,
    cv: Condvar,
    lease_ttl: Duration,
}

impl ClusterBoard {
    /// A board whose leases expire after `lease_ttl` without a heartbeat.
    pub fn new(lease_ttl: Duration) -> ClusterBoard {
        ClusterBoard {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            lease_ttl,
        }
    }

    /// The configured lease time-to-live.
    pub fn lease_ttl(&self) -> Duration {
        self.lease_ttl
    }

    /// Publish a job's shard plan; its batches become leasable immediately.
    pub fn publish(&self, job: &str, batches: Vec<Vec<SlotSpec>>) {
        let mut inner = self.inner.lock().unwrap();
        let entries: Vec<BatchEntry> = batches
            .into_iter()
            .map(|slots| BatchEntry {
                slots,
                phase: Phase::Pending,
            })
            .collect();
        for i in 0..entries.len() {
            inner.pending.push_back((job.to_string(), i as u64));
        }
        inner.jobs.insert(
            job.to_string(),
            JobShards {
                remaining: entries.len(),
                batches: entries,
                failed: None,
                records: HashMap::new(),
            },
        );
    }

    /// Hand the next pending batch to `worker`, or tell it to idle.
    pub fn lease(&self, worker: &str) -> LeaseReply {
        let now = Instant::now();
        let mut inner = self.inner.lock().unwrap();
        reap_expired(&mut inner, now);
        touch_worker(&mut inner, worker, now);
        while let Some((job_id, batch_id)) = inner.pending.pop_front() {
            let Some(job) = inner.jobs.get_mut(&job_id) else {
                continue; // withdrawn job
            };
            if job.failed.is_some() {
                continue;
            }
            let entry = &mut job.batches[batch_id as usize];
            if entry.phase != Phase::Pending {
                continue; // completed (or re-leased) while queued
            }
            entry.phase = Phase::Leased {
                worker: worker.to_string(),
                deadline: now + self.lease_ttl,
            };
            return LeaseReply::Batch(BatchAssignment {
                job: job_id,
                batch: batch_id,
                lease_ms: self.lease_ttl.as_millis() as u64,
                slots: entry.slots.clone(),
            });
        }
        LeaseReply::Idle {
            retry_ms: IDLE_RETRY_MS,
        }
    }

    /// Extend `worker`'s lease on `(job, batch)`. `false` means the lease
    /// is no longer theirs (expired and requeued, job withdrawn, …) — the
    /// worker must abandon the batch.
    pub fn heartbeat(&self, worker: &str, job: &str, batch: u64) -> bool {
        let now = Instant::now();
        let mut inner = self.inner.lock().unwrap();
        reap_expired(&mut inner, now);
        touch_worker(&mut inner, worker, now);
        let Some(entry) = batch_entry(&mut inner, job, batch) else {
            return false;
        };
        match &mut entry.phase {
            Phase::Leased {
                worker: holder,
                deadline,
            } if holder == worker => {
                *deadline = now + self.lease_ttl;
                true
            }
            _ => false,
        }
    }

    /// The reconciliation handshake: `digests[i]` is the FNV digest of the
    /// record `worker` already holds for slot `i` (or `None`). The reply
    /// lists the slots the coordinator is missing. Digests of slots the
    /// coordinator *does* hold are cross-checked — a mismatch means two
    /// workers produced different bytes for the same seeded trial, which
    /// fails the job (see the module docs).
    pub fn reconcile(
        &self,
        worker: &str,
        job: &str,
        batch: u64,
        digests: &[Option<u64>],
    ) -> ReconcileReply {
        let now = Instant::now();
        let mut inner = self.inner.lock().unwrap();
        reap_expired(&mut inner, now);
        touch_worker(&mut inner, worker, now);
        let Some(shards) = inner.jobs.get_mut(job) else {
            return ReconcileReply {
                stale: true,
                missing: vec![],
            };
        };
        if shards.failed.is_some() {
            return ReconcileReply {
                stale: true,
                missing: vec![],
            };
        }
        let Some(entry) = shards.batches.get(batch as usize) else {
            return ReconcileReply {
                stale: true,
                missing: vec![],
            };
        };
        let mut missing = Vec::new();
        for (i, slot) in entry.slots.iter().enumerate() {
            match shards.records.get(&slot_key(slot)) {
                Some((_, line)) => {
                    if let Some(Some(theirs)) = digests.get(i) {
                        let ours = line_digest(line);
                        if *theirs != ours {
                            let msg = format!(
                                "determinism violation: worker {worker} holds digest \
                                 {theirs:016x} for trial {}#r{} but the cluster recorded \
                                 {ours:016x}",
                                slot.label, slot.rep
                            );
                            shards.failed = Some(msg);
                            self.cv.notify_all();
                            return ReconcileReply {
                                stale: true,
                                missing: vec![],
                            };
                        }
                    }
                }
                None => missing.push(i),
            }
        }
        if entry.phase == Phase::Done {
            // Verified (above) but already completed by someone else.
            return ReconcileReply {
                stale: true,
                missing: vec![],
            };
        }
        ReconcileReply {
            stale: false,
            missing,
        }
    }

    /// Accept a batch completion. Every batch slot must be covered by the
    /// job's record store or by `uploads`, and every upload must match its
    /// slot's content identity — otherwise the completion is rejected with
    /// an error (a broken worker must not corrupt the board). Completions
    /// of already-done batches are reported `stale` and dropped: records
    /// are content-addressed, so the race after a lease expiry is
    /// harmless.
    pub fn complete(
        &self,
        worker: &str,
        job: &str,
        batch: u64,
        uploads: &[Upload],
    ) -> Result<CompleteReply, String> {
        let now = Instant::now();
        let mut inner = self.inner.lock().unwrap();
        reap_expired(&mut inner, now);
        touch_worker(&mut inner, worker, now);
        let Some(shards) = inner.jobs.get_mut(job) else {
            return Ok(CompleteReply {
                stale: true,
                accepted: 0,
            });
        };
        let stale = shards.failed.is_some()
            || shards
                .batches
                .get(batch as usize)
                .is_none_or(|e| e.phase == Phase::Done);
        if stale {
            return Ok(CompleteReply {
                stale: true,
                accepted: 0,
            });
        }
        let entry = &shards.batches[batch as usize];
        for u in uploads {
            let slot = entry
                .slots
                .get(u.slot)
                .ok_or_else(|| format!("upload for out-of-range slot {}", u.slot))?;
            if record_key(&u.record) != slot_key(slot) {
                return Err(format!(
                    "upload for slot {} does not match its content identity \
                     (got {}#r{}, expected {}#r{})",
                    u.slot,
                    u.record.point.point_id(),
                    u.record.rep,
                    slot.label,
                    slot.rep
                ));
            }
        }
        let covered = |slot: &SlotSpec| {
            shards.records.contains_key(&slot_key(slot))
                || uploads
                    .iter()
                    .any(|u| entry.slots.get(u.slot).map(slot_key) == Some(slot_key(slot)))
        };
        if let Some(hole) = entry.slots.iter().find(|s| !covered(s)) {
            return Err(format!(
                "incomplete batch: no record for trial {}#r{}",
                hole.label, hole.rep
            ));
        }
        for u in uploads {
            shards
                .records
                .insert(record_key(&u.record), (u.record.clone(), u.line.clone()));
        }
        shards.batches[batch as usize].phase = Phase::Done;
        shards.remaining -= 1;
        if let Some(info) = inner.workers.get_mut(worker) {
            info.trials_done += uploads.len() as u64;
        }
        self.cv.notify_all();
        Ok(CompleteReply {
            stale: false,
            accepted: uploads.len(),
        })
    }

    /// Block until `timeout` for progress on `job`, reaping expired leases
    /// first, and report its state. The executor drives this in a loop so
    /// reaping happens even when no worker traffic arrives.
    pub fn wait(&self, job: &str, timeout: Duration) -> WaitStatus {
        let mut inner = self.inner.lock().unwrap();
        reap_expired(&mut inner, Instant::now());
        match job_status(&inner, job) {
            WaitStatus::Waiting => {}
            done => return done,
        }
        let (guard, _) = self.cv.wait_timeout(inner, timeout).unwrap();
        job_status(&guard, job)
    }

    /// Drain the job's uploaded records (result assembly) without removing
    /// the job.
    pub fn take_records(&self, job: &str) -> Vec<TrialRecord> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .jobs
            .get_mut(job)
            .map(|s| std::mem::take(&mut s.records))
            .map(|m| m.into_values().map(|(rec, _)| rec).collect())
            .unwrap_or_default()
    }

    /// Remove a job from the board (cancelled, failed, or settled). Leased
    /// batches become stale: heartbeats answer `false` and completions are
    /// dropped.
    pub fn withdraw(&self, job: &str) {
        let mut inner = self.inner.lock().unwrap();
        inner.jobs.remove(job);
        inner.pending.retain(|(j, _)| j != job);
        self.cv.notify_all();
    }

    /// Record the counter snapshot a worker piggybacked on a lease or
    /// heartbeat body. Snapshots are cumulative, so the latest one simply
    /// replaces its predecessor.
    pub fn note_worker_stats(&self, worker: &str, stats: WorkerStats) {
        let now = Instant::now();
        let mut inner = self.inner.lock().unwrap();
        touch_worker(&mut inner, worker, now);
        if let Some(info) = inner.workers.get_mut(worker) {
            info.stats = stats;
        }
    }

    /// Point-in-time statistics for `/metrics`.
    pub fn stats(&self) -> BoardStats {
        let now = Instant::now();
        let mut inner = self.inner.lock().unwrap();
        reap_expired(&mut inner, now);
        let mut busy: Vec<&str> = Vec::new();
        let mut leases_active = 0;
        for shards in inner.jobs.values() {
            for entry in &shards.batches {
                if let Phase::Leased { worker, .. } = &entry.phase {
                    leases_active += 1;
                    busy.push(worker);
                }
            }
        }
        let visible = |info: &WorkerInfo| now.duration_since(info.last_seen) <= WORKER_VISIBLE;
        let workers = inner.workers.values().filter(|i| visible(i)).count();
        let workers_busy = inner
            .workers
            .iter()
            .filter(|(name, info)| visible(info) && busy.contains(&name.as_str()))
            .count();
        let mut per_worker_trials: Vec<(String, u64)> = inner
            .workers
            .iter()
            .map(|(name, info)| (name.clone(), info.trials_done))
            .collect();
        per_worker_trials.sort();
        let fleet = inner
            .workers
            .values()
            .fold(WorkerStats::default(), |acc, info| WorkerStats {
                executed: acc.executed + info.stats.executed,
                local_hits: acc.local_hits + info.stats.local_hits,
                uploaded: acc.uploaded + info.stats.uploaded,
                batches: acc.batches + info.stats.batches,
                abandoned: acc.abandoned + info.stats.abandoned,
            });
        BoardStats {
            workers,
            workers_busy,
            leases_active,
            leases_expired: inner.leases_expired,
            per_worker_trials,
            fleet,
        }
    }
}

fn job_status(inner: &Inner, job: &str) -> WaitStatus {
    match inner.jobs.get(job) {
        None => WaitStatus::Done, // withdrawn elsewhere; nothing to wait for
        Some(s) => match &s.failed {
            Some(msg) => WaitStatus::Failed(msg.clone()),
            None if s.remaining == 0 => WaitStatus::Done,
            None => WaitStatus::Waiting,
        },
    }
}

fn batch_entry<'a>(inner: &'a mut Inner, job: &str, batch: u64) -> Option<&'a mut BatchEntry> {
    inner.jobs.get_mut(job)?.batches.get_mut(batch as usize)
}

fn touch_worker(inner: &mut Inner, worker: &str, now: Instant) {
    inner
        .workers
        .entry(worker.to_string())
        .and_modify(|i| i.last_seen = now)
        .or_insert(WorkerInfo {
            last_seen: now,
            trials_done: 0,
            stats: WorkerStats::default(),
        });
}

fn reap_expired(inner: &mut Inner, now: Instant) {
    let mut requeue = Vec::new();
    for (job_id, shards) in &mut inner.jobs {
        for (i, entry) in shards.batches.iter_mut().enumerate() {
            if let Phase::Leased { deadline, .. } = &entry.phase {
                if *deadline < now {
                    entry.phase = Phase::Pending;
                    requeue.push((job_id.clone(), i as u64));
                }
            }
        }
    }
    inner.leases_expired += requeue.len() as u64;
    for item in requeue {
        inner.pending.push_back(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::line_digest;
    use disp_analysis::ExperimentPoint;
    use disp_core::scenario::{Registry, ScenarioSpec};
    use disp_graph::generators::GraphFamily;

    fn run_slot(k: usize) -> (SlotSpec, TrialRecord) {
        let point = ExperimentPoint::new(ScenarioSpec::new(GraphFamily::Star, k, "probe-dfs"), 1);
        let seed = 42 + k as u64;
        let rec = point.run_trial(&Registry::builtin(), 0, seed);
        let slot = SlotSpec {
            label: point.point_id(),
            rep: 0,
            seed,
            repetitions: 1,
        };
        (slot, rec)
    }

    fn upload_for(slot_idx: usize, rec: &TrialRecord) -> Upload {
        Upload {
            slot: slot_idx,
            wall_micros: 10,
            cached: false,
            line: rec.to_json_line(),
            record: rec.clone(),
        }
    }

    #[test]
    fn leases_hand_out_batches_in_order_then_idle() {
        let board = ClusterBoard::new(Duration::from_secs(60));
        let (s1, _) = run_slot(8);
        let (s2, _) = run_slot(12);
        board.publish("r0", vec![vec![s1.clone()], vec![s2.clone()]]);
        let LeaseReply::Batch(a) = board.lease("w1") else {
            panic!("expected batch");
        };
        assert_eq!((a.batch, a.slots[0].label.as_str()), (0, s1.label.as_str()));
        let LeaseReply::Batch(b) = board.lease("w2") else {
            panic!("expected batch");
        };
        assert_eq!(b.batch, 1);
        assert!(matches!(board.lease("w1"), LeaseReply::Idle { .. }));
        let stats = board.stats();
        assert_eq!((stats.workers, stats.leases_active), (2, 2));
        assert_eq!(stats.workers_busy, 2);
    }

    #[test]
    fn expired_leases_requeue_and_heartbeats_report_loss() {
        let board = ClusterBoard::new(Duration::from_millis(5));
        let (s1, _) = run_slot(8);
        board.publish("r0", vec![vec![s1]]);
        let LeaseReply::Batch(a) = board.lease("w1") else {
            panic!("expected batch");
        };
        std::thread::sleep(Duration::from_millis(20));
        // The reaper runs on any board entry point; w2's lease picks the
        // requeued batch up.
        let LeaseReply::Batch(b) = board.lease("w2") else {
            panic!("expected requeued batch");
        };
        assert_eq!(b.batch, a.batch);
        assert!(!board.heartbeat("w1", "r0", a.batch));
        assert!(board.heartbeat("w2", "r0", b.batch));
        assert_eq!(board.stats().leases_expired, 1);
    }

    #[test]
    fn complete_settles_the_job_and_late_duplicates_are_stale() {
        let board = ClusterBoard::new(Duration::from_millis(5));
        let (s1, r1) = run_slot(8);
        board.publish("r0", vec![vec![s1]]);
        let LeaseReply::Batch(a) = board.lease("w1") else {
            panic!("expected batch");
        };
        std::thread::sleep(Duration::from_millis(20));
        let LeaseReply::Batch(_) = board.lease("w2") else {
            panic!("expected requeued batch");
        };
        // w1's completion lands after the requeue: still accepted (the
        // records are content-addressed and identical).
        let reply = board
            .complete("w1", "r0", a.batch, &[upload_for(0, &r1)])
            .unwrap();
        assert!(!reply.stale);
        assert_eq!(board.wait("r0", Duration::from_millis(1)), WaitStatus::Done);
        // w2's completion of the same batch is now stale, not an error.
        let reply = board
            .complete("w2", "r0", a.batch, &[upload_for(0, &r1)])
            .unwrap();
        assert!(reply.stale);
        assert_eq!(board.take_records("r0").len(), 1);
    }

    #[test]
    fn reconcile_reports_missing_then_verifies_digests_of_held_slots() {
        let board = ClusterBoard::new(Duration::from_secs(60));
        let (s1, r1) = run_slot(8);
        let (s2, r2) = run_slot(12);
        board.publish("r0", vec![vec![s1.clone(), s2.clone()]]);
        let LeaseReply::Batch(a) = board.lease("w1") else {
            panic!("expected batch");
        };
        let reply = board.reconcile("w1", "r0", a.batch, &[None, None]);
        assert!(!reply.stale);
        assert_eq!(reply.missing, vec![0, 1]);
        board
            .complete(
                "w1",
                "r0",
                a.batch,
                &[upload_for(0, &r1), upload_for(1, &r2)],
            )
            .unwrap();
        // A second worker re-executed the batch (expired-lease race) and
        // reconciles with matching digests: stale, nothing missing, job
        // healthy.
        let digests = [
            Some(line_digest(&r1.to_json_line())),
            Some(line_digest(&r2.to_json_line())),
        ];
        let reply = board.reconcile("w2", "r0", a.batch, &digests);
        assert!(reply.stale && reply.missing.is_empty());
        assert_eq!(board.wait("r0", Duration::from_millis(1)), WaitStatus::Done);
    }

    #[test]
    fn digest_conflicts_fail_the_job_loudly() {
        let board = ClusterBoard::new(Duration::from_secs(60));
        let (s1, r1) = run_slot(8);
        board.publish("r0", vec![vec![s1]]);
        let LeaseReply::Batch(a) = board.lease("w1") else {
            panic!("expected batch");
        };
        board
            .complete("w1", "r0", a.batch, &[upload_for(0, &r1)])
            .unwrap();
        let reply = board.reconcile("w2", "r0", a.batch, &[Some(0xBAD)]);
        assert!(reply.stale);
        match board.wait("r0", Duration::from_millis(1)) {
            WaitStatus::Failed(msg) => assert!(msg.contains("determinism violation")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn broken_uploads_are_rejected_not_recorded() {
        let board = ClusterBoard::new(Duration::from_secs(60));
        let (s1, _) = run_slot(8);
        let (_, wrong) = run_slot(12);
        board.publish("r0", vec![vec![s1]]);
        let LeaseReply::Batch(a) = board.lease("w1") else {
            panic!("expected batch");
        };
        // Wrong content identity for the slot.
        assert!(board
            .complete("w1", "r0", a.batch, &[upload_for(0, &wrong)])
            .is_err());
        // Uncovered slot.
        assert!(board.complete("w1", "r0", a.batch, &[]).is_err());
        assert_eq!(
            board.wait("r0", Duration::from_millis(1)),
            WaitStatus::Waiting
        );
    }

    #[test]
    fn fleet_stats_aggregate_latest_worker_snapshots() {
        let board = ClusterBoard::new(Duration::from_secs(60));
        board.note_worker_stats(
            "w1",
            WorkerStats {
                executed: 10,
                local_hits: 2,
                uploaded: 12,
                batches: 3,
                abandoned: 0,
            },
        );
        board.note_worker_stats(
            "w2",
            WorkerStats {
                executed: 5,
                local_hits: 0,
                uploaded: 5,
                batches: 1,
                abandoned: 1,
            },
        );
        // Snapshots are cumulative: a newer one replaces, never adds.
        board.note_worker_stats(
            "w1",
            WorkerStats {
                executed: 11,
                local_hits: 2,
                uploaded: 13,
                batches: 4,
                abandoned: 0,
            },
        );
        let stats = board.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.fleet.executed, 16);
        assert_eq!(stats.fleet.uploaded, 18);
        assert_eq!(stats.fleet.batches, 5);
        assert_eq!(stats.fleet.abandoned, 1);
        assert_eq!(stats.fleet.local_hits, 2);
    }

    #[test]
    fn withdraw_makes_everything_stale() {
        let board = ClusterBoard::new(Duration::from_secs(60));
        let (s1, r1) = run_slot(8);
        board.publish("r0", vec![vec![s1]]);
        let LeaseReply::Batch(a) = board.lease("w1") else {
            panic!("expected batch");
        };
        board.withdraw("r0");
        assert!(!board.heartbeat("w1", "r0", a.batch));
        assert!(board.reconcile("w1", "r0", a.batch, &[None]).stale);
        assert!(
            board
                .complete("w1", "r0", a.batch, &[upload_for(0, &r1)])
                .unwrap()
                .stale
        );
        assert!(matches!(board.lease("w1"), LeaseReply::Idle { .. }));
    }
}
