//! Deterministic shard planning.
//!
//! A campaign grid is already a flat, totally ordered list of trial slots
//! (`CampaignSpec::trials()`), and every slot's seed is a pure function of
//! its content (`trial_seed`), so the shard plan can be the simplest thing
//! that works: contiguous runs of slots in grid order. No hashing, no
//! balancing heuristics — batches are handed out dynamically by the lease
//! board, so load balance comes from pull scheduling, not from the plan.

use crate::proto::SlotSpec;

/// Split `slots` into contiguous batches of at most `batch_size` slots,
/// preserving grid order. `batch_size` of 0 is treated as 1.
pub fn plan_batches(slots: Vec<SlotSpec>, batch_size: usize) -> Vec<Vec<SlotSpec>> {
    let size = batch_size.max(1);
    let mut batches = Vec::with_capacity(slots.len().div_ceil(size));
    let mut current = Vec::with_capacity(size);
    for slot in slots {
        current.push(slot);
        if current.len() == size {
            batches.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: usize) -> SlotSpec {
        SlotSpec {
            label: format!("s{i}"),
            rep: i,
            seed: i as u64,
            repetitions: 1,
        }
    }

    #[test]
    fn batches_are_contiguous_and_ordered() {
        let slots: Vec<_> = (0..7).map(slot).collect();
        let batches = plan_batches(slots.clone(), 3);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 3);
        assert_eq!(batches[2].len(), 1);
        let flat: Vec<_> = batches.into_iter().flatten().collect();
        assert_eq!(flat, slots);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(plan_batches(vec![], 4).is_empty());
        assert_eq!(plan_batches((0..3).map(slot).collect(), 0).len(), 3);
        assert_eq!(plan_batches((0..3).map(slot).collect(), 100).len(), 1);
    }
}
