//! The scenario API: one open, canonical, round-trippable description of a
//! run, from the CLI all the way to the hot loop.
//!
//! A [`ScenarioSpec`] names everything that defines a run — graph family,
//! agent count and occupancy, [`Placement`] family, [`Schedule`], algorithm
//! (by registry label) with typed per-algorithm [`Params`], and [`Limits`] —
//! and round-trips losslessly through a canonical label string (see the
//! grammar below and `DESIGN.md` §7). Algorithms are not a closed enum:
//! they come from a [`Registry`] of [`AlgorithmFactory`] values, so adding
//! an algorithm is one module plus one registration line, never a
//! cross-crate `match` surgery.
//!
//! ## Canonical label grammar
//!
//! ```text
//! scenario  := family "/k" k ["/occ" float] "/" placement "/" schedule
//!              ["/dyn-ring" u64] ["/crash" u64]
//!              "/" algorithm ("/" key "=" value)*
//!              ["/dist" u64] ["/rounds" u64] ["/steps" u64]
//! ```
//!
//! * `family`    — a [`GraphFamily`] label (`rtree`, `er6`, `grid`, …)
//! * `placement` — a [`Placement`] label (`rooted`, `scatter`, `cluster4`,
//!   `spread`)
//! * `schedule`  — a [`Schedule`] label (`sync`, `async-rr`,
//!   `async-rand0.7`, `async-lag4`, `async-target4`); adversary seeds are
//!   **not** part of a scenario — every seed of a run derives from the
//!   single run seed
//! * `dyn-ringR` — the dynamic-graph adversary (arXiv 2408.12220): `R ≥ 1`
//!   seeded edges removed per round, restored the next; ring family only
//! * `crashF`    — the crash-fault plan: `F ≥ 1` agents die at seeded
//!   times; only crash-tolerant algorithms accept it
//! * `algorithm` — a [`Registry`] label (`ks-dfs`, `probe-dfs`,
//!   `sync-seeker`, `random-walk`, …)
//! * params      — sorted `key=value` segments with canonically formatted
//!   values ([`ParamValue`])
//! * `distD`     — the distance-`D` dispersion predicate (`D ≥ 2`;
//!   pairwise settled distance, verified by multi-source BFS)
//!
//! `occ`/`dyn-ring`/`crash`/`dist`/`rounds`/`steps` appear only when they
//! differ from their defaults (1.0 / absent / 0 / 1 / unlimited) — omission
//! *is* the canonical form.
//!
//! Examples: `rtree/k64/rooted/sync/probe-dfs`,
//! `er6/k32/scatter/async-rand0.7/ks-dfs`,
//! `ring/k24/rooted/sync/dyn-ring1/probe-dfs`,
//! `ring/k16/occ0.5/scatter/sync/crash3/random-walk`,
//! `star/k96/rooted/sync/sync-seeker/probers=32/wait=6`.
//!
//! Floats are formatted canonically ([`fmt_f64`]): the shortest
//! value-round-tripping decimal, always containing `.` or `e` so integers
//! and floats never collide; parsing rejects non-canonical spellings, which
//! is what makes `label → spec → label` the identity.

use crate::baselines::ks_dfs::KsDfs;
use crate::probe_dfs::ProbeDfs;
use crate::rooted_sync::{RootedSyncDisp, SyncConfig};
use crate::verify;
use disp_graph::generators::GraphFamily;
use disp_graph::{NodeId, Topology};
use disp_rng::mix;
use disp_sim::{
    Adversary, AdversaryKind, AgentProtocol, AsyncRunner, CrashPlan, DynamicAdversary, Outcome,
    Placement, RunConfig, RunError, SyncRunner, TimelineRecorder, World, WorldPool,
};
use std::fmt;

// ---------------------------------------------------------------------------
// Canonical floats
// ---------------------------------------------------------------------------

/// Format a finite `f64` canonically: Rust's shortest round-trip decimal,
/// forced to contain `.` or `e` so a float is never mistaken for an integer
/// (`1.0` stays `"1.0"`, never `"1"`).
pub fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "canonical floats are finite");
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        s + ".0"
    }
}

/// Parse a float written by [`fmt_f64`], rejecting non-canonical spellings
/// (`"0.70"`, `".5"`, `"1"`) and non-finite values — the property that makes
/// label round-trips byte-identical.
pub fn parse_f64(s: &str) -> Option<f64> {
    let v: f64 = s.parse().ok()?;
    (v.is_finite() && fmt_f64(v) == s).then_some(v)
}

/// Parse an unsigned integer in canonical form: plain digits, no sign and
/// no leading zeros (`"08"`, `"+7"` are rejected). Keeps every integer in
/// the label grammar a bijection with its value, like [`parse_f64`] does
/// for floats.
pub fn parse_u64(s: &str) -> Option<u64> {
    let v: u64 = s.parse().ok()?;
    (v.to_string() == s).then_some(v)
}

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

/// Which scheduler a scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Synchronous rounds.
    Sync,
    /// Asynchronous, round-robin activations (benign schedule).
    AsyncRoundRobin,
    /// Asynchronous, independent random activations with the given per-step
    /// probability.
    AsyncRandom {
        /// Per-agent activation probability per step.
        prob: f64,
        /// RNG seed (0 inside a [`ScenarioSpec`]; the runner derives the
        /// live adversary seed from the run seed).
        seed: u64,
    },
    /// Asynchronous with heterogeneous lags up to `max_lag`.
    AsyncLagging {
        /// Largest per-agent activation period.
        max_lag: u64,
        /// RNG seed (see [`Schedule::AsyncRandom::seed`]).
        seed: u64,
    },
    /// Asynchronous with the adaptive targeted (starvation) adversary: the
    /// protocol-designated victim set — the unsettled agents, i.e. the DFS
    /// driver, its cohort and the probers — is activated only every
    /// `max_lag`-th step while everyone else is activated promptly. The
    /// paper's lower-bound adversarial shape; deterministic (no seed).
    AsyncTargeted {
        /// Steps between consecutive victim activations.
        max_lag: u64,
    },
}

impl Schedule {
    /// Canonical label: `sync`, `async-rr`, `async-rand<float>`,
    /// `async-lag<int>`, `async-target<int>`. Seeds are deliberately not
    /// encoded — a schedule label describes the adversary *family*, the run
    /// seed supplies its randomness.
    pub fn label(&self) -> String {
        match self {
            Schedule::Sync => "sync".into(),
            Schedule::AsyncRoundRobin => "async-rr".into(),
            Schedule::AsyncRandom { prob, .. } => format!("async-rand{}", fmt_f64(*prob)),
            Schedule::AsyncLagging { max_lag, .. } => format!("async-lag{max_lag}"),
            Schedule::AsyncTargeted { max_lag } => format!("async-target{max_lag}"),
        }
    }

    /// Inverse of [`Schedule::label`] (seeds come back as 0). Rejects
    /// non-canonical float spellings, so `label ↔ value` is a bijection.
    pub fn from_label(label: &str) -> Option<Schedule> {
        match label {
            "sync" => Some(Schedule::Sync),
            "async-rr" => Some(Schedule::AsyncRoundRobin),
            _ => {
                if let Some(rest) = label.strip_prefix("async-rand") {
                    let prob = parse_f64(rest)?;
                    (prob > 0.0 && prob <= 1.0).then_some(Schedule::AsyncRandom { prob, seed: 0 })
                } else if let Some(rest) = label.strip_prefix("async-target") {
                    let max_lag = parse_u64(rest)?;
                    (max_lag >= 1).then_some(Schedule::AsyncTargeted { max_lag })
                } else if let Some(rest) = label.strip_prefix("async-lag") {
                    let max_lag = parse_u64(rest)?;
                    (max_lag >= 1).then_some(Schedule::AsyncLagging { max_lag, seed: 0 })
                } else {
                    None
                }
            }
        }
    }

    /// Whether this schedule is asynchronous.
    pub fn is_async(&self) -> bool {
        !matches!(self, Schedule::Sync)
    }

    /// The same schedule with its adversary seed replaced by `seed` (a
    /// no-op for the deterministic schedules).
    pub fn reseeded(self, seed: u64) -> Schedule {
        match self {
            Schedule::Sync => Schedule::Sync,
            Schedule::AsyncRoundRobin => Schedule::AsyncRoundRobin,
            Schedule::AsyncRandom { prob, .. } => Schedule::AsyncRandom { prob, seed },
            Schedule::AsyncLagging { max_lag, .. } => Schedule::AsyncLagging { max_lag, seed },
            Schedule::AsyncTargeted { max_lag } => Schedule::AsyncTargeted { max_lag },
        }
    }

    /// The adversary this schedule runs under, as a seedable descriptor plus
    /// the stored seed — `None` for the synchronous scheduler.
    pub fn adversary(&self) -> Option<(AdversaryKind, u64)> {
        match *self {
            Schedule::Sync => None,
            Schedule::AsyncRoundRobin => Some((AdversaryKind::RoundRobin, 0)),
            Schedule::AsyncRandom { prob, seed } => {
                Some((AdversaryKind::RandomSubset { prob }, seed))
            }
            Schedule::AsyncLagging { max_lag, seed } => {
                Some((AdversaryKind::Lagging { max_lag }, seed))
            }
            Schedule::AsyncTargeted { max_lag } => Some((AdversaryKind::Targeted { max_lag }, 0)),
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

// ---------------------------------------------------------------------------
// Typed per-algorithm parameters
// ---------------------------------------------------------------------------

/// A single typed parameter value with a canonical text form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// An unsigned integer, formatted as plain digits.
    U64(u64),
    /// A finite float, formatted by [`fmt_f64`] (always contains `.`/`e`).
    F64(f64),
    /// A boolean, formatted `true`/`false`.
    Bool(bool),
}

impl ParamValue {
    /// Canonical text form (the label/JSON wire encoding).
    pub fn fmt(&self) -> String {
        match *self {
            ParamValue::U64(v) => v.to_string(),
            ParamValue::F64(v) => fmt_f64(v),
            ParamValue::Bool(v) => v.to_string(),
        }
    }

    /// Inverse of [`ParamValue::fmt`]. The three canonical forms are
    /// disjoint (digits / contains `.`|`e` / `true`|`false`), so the type is
    /// recovered from the text alone.
    pub fn parse(s: &str) -> Option<ParamValue> {
        if s == "true" || s == "false" {
            return Some(ParamValue::Bool(s == "true"));
        }
        if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) {
            let v: u64 = s.parse().ok()?;
            return (v.to_string() == s).then_some(ParamValue::U64(v));
        }
        parse_f64(s).map(ParamValue::F64)
    }

    /// The type name, used in mismatch errors.
    pub fn kind(&self) -> &'static str {
        match self {
            ParamValue::U64(_) => "u64",
            ParamValue::F64(_) => "f64",
            ParamValue::Bool(_) => "bool",
        }
    }
}

/// An ordered (sorted-by-key, duplicate-free) set of typed parameters — the
/// open replacement for hard-wired per-algorithm config structs on the run
/// path. Factories declare their legal keys via
/// [`AlgorithmFactory::default_params`]; validation checks names and types
/// against that declaration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Params(Vec<(String, ParamValue)>);

impl Params {
    /// No parameters.
    pub fn new() -> Params {
        Params(Vec::new())
    }

    /// Set (or replace) a parameter. Keys are kept sorted so the canonical
    /// encodings are independent of call order.
    pub fn set(mut self, key: &str, value: ParamValue) -> Params {
        match self.0.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.0[i].1 = value,
            Err(i) => self.0.insert(i, (key.to_string(), value)),
        }
        self
    }

    /// Look up a parameter.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.0
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.0[i].1)
    }

    /// Integer parameter with a default (factories use this in `build`).
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        match self.get(key) {
            Some(ParamValue::U64(v)) => *v,
            _ => default,
        }
    }

    /// Iterate parameters in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Limits
// ---------------------------------------------------------------------------

/// Optional overrides of the runner's safety limits. `None` means "derive
/// from the instance" (see [`Limits::resolve`]); only overrides appear in
/// labels and JSON, so the default spec stays short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Limits {
    /// Maximum SYNC rounds before the runner gives up.
    pub max_rounds: Option<u64>,
    /// Maximum ASYNC scheduler steps before the runner gives up.
    pub max_steps: Option<u64>,
}

/// The trivial round lower bound of a **rooted** start: within `d` time
/// units the `k` co-located agents can only occupy nodes of the radius-`d`
/// ball around the root, which holds at most `2d + 1` nodes when `Δ ≤ 2`
/// and at most `1 + Δ + Δ² + … + Δ^d` nodes otherwise. Any user-supplied
/// limit below this bound cannot possibly suffice and is rejected with a
/// typed error instead of burning a run.
pub fn rooted_round_lower_bound(k: usize, max_degree: usize) -> u64 {
    if k <= 1 {
        return 0;
    }
    if max_degree <= 2 {
        return (k as u64 - 1).div_ceil(2);
    }
    let delta = max_degree as u128;
    let (mut d, mut ball, mut frontier) = (0u64, 1u128, 1u128);
    while ball < k as u128 {
        frontier = frontier.saturating_mul(delta);
        ball = ball.saturating_add(frontier);
        d += 1;
    }
    d
}

/// The trivial round lower bound of a **dynamic ring** run (the arXiv
/// 2408.12220 model): a distance-`d` dispersion of `k` agents spans at
/// least `(k-1)·d` ring hops, and the edge-removing adversary can keep one
/// side of the root permanently cut, forcing all expansion through a
/// frontier that advances at most one hop per round — so `(k-1)·max(d,1)`
/// rounds are necessary. User limits below this bound are rejected with a
/// typed [`ScenarioError::LimitTooLow`].
pub fn dyn_ring_round_lower_bound(k: usize, min_distance: u64) -> u64 {
    if k <= 1 {
        return 0;
    }
    (k as u64 - 1).saturating_mul(min_distance.max(1))
}

impl Limits {
    /// Resolve into the engine's [`RunConfig`] for a concrete instance.
    ///
    /// Fixed default limits cannot serve both `k = 16` smoke runs and
    /// `n = 10^6` line graphs, so the defaults are derived from the
    /// instance: the round budget covers the `O(k log k)` and
    /// `O(min{m, kΔ})` envelopes of every implemented algorithm with a
    /// generous constant, and the step budget additionally scales with how
    /// many scheduler steps the adversary needs per epoch. Memory sampling
    /// switches to the geometric schedule (interval 0) for large `k`,
    /// bounding sampling work at `O(k log T)`. User overrides pass through
    /// untouched — hopeless ones are rejected up front with a typed
    /// [`ScenarioError::LimitTooLow`] by [`ScenarioSpec::validate`], and
    /// any that slip past the family-level bound simply run to a faithful
    /// limit-exceeded record instead of aborting a campaign mid-run.
    pub fn resolve(self, k: usize, m: usize, max_degree: usize, schedule: Schedule) -> RunConfig {
        self.resolve_with_faults(k, m, max_degree, schedule, None, 0)
    }

    /// [`Limits::resolve`] for a faulty world: the default budget is
    /// derived from the **live** worst case. Crashed agents shrink the
    /// effective `k` the envelope charges for (survivors do the remaining
    /// work), but each crash may orphan a settled node and force a
    /// re-settlement walk, so a per-crash recovery term is added back; a
    /// dynamic adversary stretches every distance by blocking edges, which
    /// multiplies the whole budget. Fault-free inputs reproduce
    /// [`Limits::resolve`] exactly.
    pub fn resolve_with_faults(
        self,
        k: usize,
        m: usize,
        max_degree: usize,
        schedule: Schedule,
        dyn_ring: Option<u64>,
        crashes: u64,
    ) -> RunConfig {
        let k_live = k.saturating_sub(crashes as usize).max(1);
        let log2k = (usize::BITS - k_live.next_power_of_two().leading_zeros()) as u64;
        let envelope = 64u64
            .saturating_mul(k_live as u64)
            .saturating_mul(log2k.max(1))
            .saturating_add(16u64.saturating_mul((m as u64).min(k_live as u64 * max_degree as u64)))
            // Each crash can orphan a settled node; re-settling it costs a
            // walk bounded by the k-ball the protocol operates in.
            .saturating_add(crashes.saturating_mul(16).saturating_mul(k as u64))
            // One edge down per round delays a frontier move with
            // probability ~1/n; a generous constant absorbs the stretch
            // plus adversarial placement of the cut.
            .saturating_mul(if dyn_ring.is_some() { 4 } else { 1 });
        let default_rounds = 10_000u64.saturating_add(envelope);
        let step_factor = match schedule {
            Schedule::Sync => 1,
            Schedule::AsyncRoundRobin => 2,
            Schedule::AsyncRandom { prob, .. } => (8.0 / prob.max(1e-6)).ceil() as u64,
            Schedule::AsyncLagging { max_lag, .. } => 4 * max_lag.max(1) + 4,
            // Victims fire every max_lag-th step, so time stretches by
            // exactly that factor (plus headroom).
            Schedule::AsyncTargeted { max_lag } => 2 * max_lag.max(1) + 4,
        };
        RunConfig {
            max_rounds: self.max_rounds.unwrap_or(default_rounds),
            max_steps: self
                .max_steps
                .unwrap_or_else(|| default_rounds.saturating_mul(step_factor)),
            memory_sample_interval: if k >= 4096 { 0 } else { 4 },
        }
    }

    /// Materialize into the engine's [`RunConfig`] with the legacy fixed
    /// defaults, ignoring the instance. Prefer [`Limits::resolve`]; this is
    /// kept for callers without a graph at hand.
    pub fn to_run_config(self) -> RunConfig {
        let d = RunConfig::default();
        RunConfig {
            max_rounds: self.max_rounds.unwrap_or(d.max_rounds),
            max_steps: self.max_steps.unwrap_or(d.max_steps),
            ..d
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a scenario is not runnable. Every illegal combination is a typed
/// error — never a panic and never silent misbehavior.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The algorithm label is not in the registry.
    UnknownAlgorithm {
        /// The offending label.
        algorithm: String,
    },
    /// A scenario label does not match the grammar.
    BadLabel {
        /// The offending label.
        label: String,
        /// What went wrong.
        reason: String,
    },
    /// The algorithm requires a rooted start but the placement is not rooted
    /// (e.g. `probe-dfs` + `scatter`).
    PlacementUnsupported {
        /// Algorithm label.
        algorithm: String,
        /// Placement label.
        placement: String,
    },
    /// The algorithm cannot run under this schedule (e.g. `sync-seeker` +
    /// any ASYNC schedule).
    ScheduleUnsupported {
        /// Algorithm label.
        algorithm: String,
        /// Schedule label.
        schedule: String,
    },
    /// The scenario demands a fault model (`dyn-ring`/`crash`) the
    /// algorithm does not tolerate (e.g. `ks-dfs` + `crash2`: its
    /// backtracking reads settled agents' pointers, which a corpse orphans).
    FaultUnsupported {
        /// Algorithm label.
        algorithm: String,
        /// The fault dimension (`"dyn-ring"` or `"crash"`).
        fault: &'static str,
    },
    /// A parameter key the algorithm does not declare.
    UnknownParam {
        /// Algorithm label.
        algorithm: String,
        /// The offending key.
        key: String,
    },
    /// A parameter with the right key but an illegal value or type.
    BadParam {
        /// The offending key.
        key: String,
        /// What went wrong.
        reason: String,
    },
    /// A user-supplied runner limit below the placement's trivial lower
    /// bound — the run could never finish within it.
    LimitTooLow {
        /// Which limit (`"rounds"` or `"steps"`).
        key: &'static str,
        /// The supplied value.
        given: u64,
        /// The instance's trivial lower bound.
        lower_bound: u64,
    },
    /// A structurally invalid spec (k = 0, occupancy outside (0, 1], …).
    BadSpec {
        /// What went wrong.
        reason: String,
    },
    /// The run itself failed (limit exceeded).
    Run(RunError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownAlgorithm { algorithm } => {
                write!(f, "unknown algorithm '{algorithm}' (not in the registry)")
            }
            ScenarioError::BadLabel { label, reason } => {
                write!(f, "bad scenario label '{label}': {reason}")
            }
            ScenarioError::PlacementUnsupported {
                algorithm,
                placement,
            } => write!(
                f,
                "algorithm '{algorithm}' requires a rooted start; placement '{placement}' is not rooted"
            ),
            ScenarioError::ScheduleUnsupported {
                algorithm,
                schedule,
            } => write!(
                f,
                "algorithm '{algorithm}' cannot run under schedule '{schedule}'"
            ),
            ScenarioError::FaultUnsupported { algorithm, fault } => write!(
                f,
                "algorithm '{algorithm}' does not tolerate the '{fault}' fault model"
            ),
            ScenarioError::UnknownParam { algorithm, key } => {
                write!(f, "algorithm '{algorithm}' has no parameter '{key}'")
            }
            ScenarioError::BadParam { key, reason } => {
                write!(f, "bad value for parameter '{key}': {reason}")
            }
            ScenarioError::LimitTooLow {
                key,
                given,
                lower_bound,
            } => write!(
                f,
                "limit {key}={given} is below the placement's trivial lower bound {lower_bound}"
            ),
            ScenarioError::BadSpec { reason } => write!(f, "invalid scenario: {reason}"),
            ScenarioError::Run(e) => write!(f, "run failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<RunError> for ScenarioError {
    fn from(e: RunError) -> Self {
        ScenarioError::Run(e)
    }
}

// ---------------------------------------------------------------------------
// The algorithm registry
// ---------------------------------------------------------------------------

/// `Some(digits)` when `seg` is exactly `prefix` followed by one or more
/// ASCII digits — the shape of the reserved grammar tokens.
fn digits_suffix<'a>(seg: &'a str, prefix: &str) -> Option<&'a str> {
    seg.strip_prefix(prefix)
        .filter(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

/// Whether `label` collides with a reserved grammar token (`dyn-ring<N>`,
/// `crash<N>`, `dist<N>`). Algorithm labels must avoid these shapes or
/// [`ScenarioSpec::from_label`] could not tell an algorithm segment from a
/// fault/verification segment.
fn is_reserved_label(label: &str) -> bool {
    ["dyn-ring", "crash", "dist"]
        .iter()
        .any(|tok| digits_suffix(label, tok).is_some())
}

/// A constructor + capability declaration for one algorithm. Implement this
/// (plus one [`Registry::with`] call) to plug a new algorithm into every
/// campaign, bench and CLI — nothing else in the workspace needs touching.
pub trait AlgorithmFactory: Send + Sync {
    /// Stable registry label (lowercase letters, digits and `-`; must not
    /// contain `/` or `=`, which the label grammar reserves).
    fn label(&self) -> &'static str;

    /// Whether the algorithm accepts non-rooted (general) starts.
    fn supports_general(&self) -> bool {
        false
    }

    /// Whether the algorithm runs under asynchronous schedules.
    fn supports_async(&self) -> bool {
        true
    }

    /// Whether the algorithm tolerates the dynamic-graph adversary
    /// (`dyn-ringR`): every move must go through the fallible
    /// `try_move_via` path and treat `EdgeDown` as "wait, retry later".
    fn supports_dynamic(&self) -> bool {
        false
    }

    /// Whether the algorithm tolerates crash faults (`crashF`): it must
    /// implement [`AgentProtocol::on_crash`], retract the corpse's claims,
    /// and terminate on the surviving agents alone.
    fn supports_crash(&self) -> bool {
        false
    }

    /// The legal parameters with their default values; validation checks
    /// scenario params against these keys and types.
    fn default_params(&self) -> Params {
        Params::new()
    }

    /// Construct the protocol for a prepared world. `seed` is the derived
    /// algorithm-internal seed of this run.
    fn build(&self, world: &World, params: &Params, seed: u64) -> Box<dyn AgentProtocol>;
}

/// An open collection of [`AlgorithmFactory`] values, keyed by label.
///
/// [`Registry::builtin`] carries the paper's algorithms; extras register on
/// top with [`Registry::with`]. Registration order is report order.
#[derive(Default)]
pub struct Registry {
    factories: Vec<Box<dyn AlgorithmFactory>>,
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Registry {
        Registry::default()
    }

    /// The built-in algorithms: `ks-dfs`, `probe-dfs`, `sync-seeker`,
    /// `random-walk` (the crash-tolerant one — memoryless walks survive
    /// arbitrary agent loss, which none of the DFS-structured algorithms
    /// do, so the fault-worlds campaigns need it built in).
    pub fn builtin() -> Registry {
        Registry::empty()
            .with(KsDfsFactory)
            .with(ProbeDfsFactory)
            .with(SyncSeekerFactory)
            .with(crate::extras::random_walk::RandomWalkFactory)
    }

    /// Register a factory, consuming and returning the registry so
    /// registration is a one-liner.
    ///
    /// # Panics
    /// Panics if the label is already taken or violates the label grammar —
    /// both are programming errors at registration time.
    pub fn with(mut self, factory: impl AlgorithmFactory + 'static) -> Registry {
        let label = factory.label();
        assert!(
            !label.is_empty()
                && label
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'),
            "algorithm label '{label}' violates the grammar (lowercase/digits/'-')"
        );
        assert!(
            !is_reserved_label(label),
            "algorithm label '{label}' collides with a reserved grammar token \
             (dyn-ring<N>/crash<N>/dist<N>)"
        );
        assert!(
            self.get(label).is_none(),
            "algorithm label '{label}' registered twice"
        );
        self.factories.push(Box::new(factory));
        self
    }

    /// Look up a factory by label.
    pub fn get(&self, label: &str) -> Option<&dyn AlgorithmFactory> {
        self.factories
            .iter()
            .find(|f| f.label() == label)
            .map(|f| f.as_ref())
    }

    /// All registered labels, in registration (= report) order.
    pub fn labels(&self) -> Vec<&'static str> {
        self.factories.iter().map(|f| f.label()).collect()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Registry").field(&self.labels()).finish()
    }
}

/// Factory for the OPODIS'21 group-DFS baseline (general starts, both
/// schedulers).
pub struct KsDfsFactory;

impl AlgorithmFactory for KsDfsFactory {
    fn label(&self) -> &'static str {
        "ks-dfs"
    }

    fn supports_general(&self) -> bool {
        true
    }

    fn build(&self, world: &World, _params: &Params, seed: u64) -> Box<dyn AgentProtocol> {
        Box::new(KsDfs::with_seed(world, seed))
    }
}

/// Factory for the paper's doubling-probe DFS (`RootedAsyncDisp`,
/// Theorem 7.1): rooted starts, both schedulers.
pub struct ProbeDfsFactory;

impl AlgorithmFactory for ProbeDfsFactory {
    fn label(&self) -> &'static str {
        "probe-dfs"
    }

    // Every move site goes through the fallible path and treats a downed
    // edge as "stay in this stage, retry next activation" — sound because
    // the dynamic adversary restores each removed edge one round later.
    fn supports_dynamic(&self) -> bool {
        true
    }

    fn build(&self, world: &World, _params: &Params, _seed: u64) -> Box<dyn AgentProtocol> {
        Box::new(ProbeDfs::new(world))
    }
}

/// Factory for the paper's seeker-pool synchronous algorithm (Theorem 6.1):
/// rooted starts, SYNC only.
///
/// Parameters: `wait` (rounds a seeker waits at a probed neighbor, default
/// 1) and `probers` (cap on seekers per probe iteration, `0` = uncapped).
pub struct SyncSeekerFactory;

impl AlgorithmFactory for SyncSeekerFactory {
    fn label(&self) -> &'static str {
        "sync-seeker"
    }

    fn supports_async(&self) -> bool {
        false
    }

    fn default_params(&self) -> Params {
        Params::new()
            .set("wait", ParamValue::U64(1))
            .set("probers", ParamValue::U64(0))
    }

    fn build(&self, world: &World, params: &Params, _seed: u64) -> Box<dyn AgentProtocol> {
        let config = SyncConfig {
            wait_rounds: params.u64_or("wait", 1) as u32,
            max_probers: match params.u64_or("probers", 0) {
                0 => None,
                cap => Some(cap as usize),
            },
        };
        Box::new(RootedSyncDisp::with_config(world, config))
    }
}

// ---------------------------------------------------------------------------
// The scenario spec
// ---------------------------------------------------------------------------

/// Sub-seed tags: every random aspect of a run derives from the single run
/// seed through `mix(&[seed, TAG])`. The tags (and therefore the streams)
/// are part of the reproducibility contract.
const SEED_GRAPH: u64 = 0xD15C_0001;
const SEED_PLACEMENT: u64 = 0xD15C_0002;
const SEED_ADVERSARY: u64 = 0xD15C_0003;
const SEED_ALGORITHM: u64 = 0xD15C_0004;
const SEED_DYNAMICS: u64 = 0xD15C_0005;
const SEED_CRASH: u64 = 0xD15C_0006;

/// The canonical description of one run. See the module docs for the label
/// grammar; construction goes through [`ScenarioSpec::new`] plus the
/// `with_*` builder methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Graph family to instantiate.
    pub family: GraphFamily,
    /// Number of agents.
    pub k: usize,
    /// Fraction of nodes carrying agents (the graph gets ≈ `k / occupancy`
    /// nodes; 1.0 = `k = n`).
    pub occupancy: f64,
    /// Initial placement family.
    pub placement: Placement,
    /// Scheduler (with adversary seed normalized to 0 — run seeds supply
    /// the randomness).
    pub schedule: Schedule,
    /// Dynamic-graph adversary: `Some(r)` removes `r` seeded edges per
    /// round (restored the next round); ring family only.
    pub dyn_ring: Option<u64>,
    /// Crash faults: this many agents die at seeded times (`0` = none).
    pub crashes: u64,
    /// The dispersion predicate's minimum pairwise settled distance
    /// (`1` = plain dispersion, the default).
    pub min_distance: u64,
    /// Algorithm registry label.
    pub algorithm: String,
    /// Typed per-algorithm parameters (only the overridden ones).
    pub params: Params,
    /// Runner limit overrides.
    pub limits: Limits,
}

/// The result of [`ScenarioSpec::run`].
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The canonical label of the scenario that ran.
    pub scenario: String,
    /// Raw measurements.
    pub outcome: Outcome,
    /// Whether the final configuration is a valid dispersion.
    pub dispersed: bool,
}

impl ScenarioSpec {
    /// A rooted, synchronous scenario at full occupancy with default
    /// parameters and limits — refine with the `with_*` methods.
    pub fn new(family: GraphFamily, k: usize, algorithm: &str) -> ScenarioSpec {
        ScenarioSpec {
            family,
            k,
            occupancy: 1.0,
            placement: Placement::Rooted,
            schedule: Schedule::Sync,
            dyn_ring: None,
            crashes: 0,
            min_distance: 1,
            algorithm: algorithm.to_string(),
            params: Params::new(),
            limits: Limits::default(),
        }
    }

    /// Enable the dynamic-ring adversary: `rate ≥ 1` seeded edges removed
    /// per round, restored the next round (arXiv 2408.12220 model).
    pub fn with_dynamic_ring(mut self, rate: u64) -> ScenarioSpec {
        self.dyn_ring = Some(rate);
        self
    }

    /// Enable crash faults: `crashes` agents die at seeded times.
    pub fn with_crashes(mut self, crashes: u64) -> ScenarioSpec {
        self.crashes = crashes;
        self
    }

    /// Require pairwise settled distance ≥ `d` at termination
    /// (distance-`d` dispersion; `1` is plain dispersion).
    pub fn with_min_distance(mut self, d: u64) -> ScenarioSpec {
        self.min_distance = d;
        self
    }

    /// Set the placement family.
    pub fn with_placement(mut self, placement: Placement) -> ScenarioSpec {
        self.placement = placement;
        self
    }

    /// Set the schedule. Any embedded adversary seed is normalized to 0 —
    /// seeds are not part of a scenario's identity.
    pub fn with_schedule(mut self, schedule: Schedule) -> ScenarioSpec {
        self.schedule = schedule.reseeded(0);
        self
    }

    /// Set the occupancy.
    pub fn with_occupancy(mut self, occupancy: f64) -> ScenarioSpec {
        self.occupancy = occupancy;
        self
    }

    /// Set one algorithm parameter.
    pub fn with_param(mut self, key: &str, value: ParamValue) -> ScenarioSpec {
        self.params = self.params.set(key, value);
        self
    }

    /// Override the runner limits.
    pub fn with_limits(mut self, limits: Limits) -> ScenarioSpec {
        self.limits = limits;
        self
    }

    /// The canonical label — the identity of this scenario everywhere:
    /// trial ids, manifest fingerprints, CLI arguments, report rows.
    pub fn label(&self) -> String {
        let mut out = format!("{}/k{}", self.family.label(), self.k);
        if self.occupancy != 1.0 {
            out.push_str(&format!("/occ{}", fmt_f64(self.occupancy)));
        }
        out.push_str(&format!(
            "/{}/{}",
            self.placement.label(),
            self.schedule.label()
        ));
        if let Some(rate) = self.dyn_ring {
            out.push_str(&format!("/dyn-ring{rate}"));
        }
        if self.crashes > 0 {
            out.push_str(&format!("/crash{}", self.crashes));
        }
        out.push_str(&format!("/{}", self.algorithm));
        for (key, value) in self.params.iter() {
            out.push_str(&format!("/{key}={}", value.fmt()));
        }
        if self.min_distance > 1 {
            out.push_str(&format!("/dist{}", self.min_distance));
        }
        if let Some(r) = self.limits.max_rounds {
            out.push_str(&format!("/rounds{r}"));
        }
        if let Some(s) = self.limits.max_steps {
            out.push_str(&format!("/steps{s}"));
        }
        out
    }

    /// Parse a canonical label back into a spec. This checks the grammar
    /// only; combine with [`ScenarioSpec::validate`] (or use
    /// [`ScenarioSpec::parse`]) to also check the spec against a registry.
    pub fn from_label(label: &str) -> Result<ScenarioSpec, ScenarioError> {
        let bad = |reason: &str| ScenarioError::BadLabel {
            label: label.to_string(),
            reason: reason.to_string(),
        };
        let mut segments = label.split('/');
        let family_s = segments
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| bad("empty label"))?;
        let family = GraphFamily::from_label(family_s)
            .ok_or_else(|| bad(&format!("unknown graph family '{family_s}'")))?;
        let k_s = segments.next().ok_or_else(|| bad("missing k segment"))?;
        let k: usize = k_s
            .strip_prefix('k')
            .and_then(parse_u64)
            .filter(|&k| k >= 1)
            .ok_or_else(|| bad(&format!("bad k segment '{k_s}'")))? as usize;
        let mut next = segments.next().ok_or_else(|| bad("missing placement"))?;
        let mut occupancy = 1.0;
        if let Some(rest) = next.strip_prefix("occ") {
            occupancy = parse_f64(rest).ok_or_else(|| bad(&format!("bad occupancy '{rest}'")))?;
            if occupancy == 1.0 {
                return Err(bad("occ1.0 must be omitted (canonical form)"));
            }
            next = segments.next().ok_or_else(|| bad("missing placement"))?;
        }
        let placement = Placement::from_label(next)
            .ok_or_else(|| bad(&format!("unknown placement '{next}'")))?;
        let sched_s = segments.next().ok_or_else(|| bad("missing schedule"))?;
        let schedule = Schedule::from_label(sched_s)
            .ok_or_else(|| bad(&format!("unknown schedule '{sched_s}'")))?;
        let mut next = segments.next().ok_or_else(|| bad("missing algorithm"))?;
        let mut dyn_ring = None;
        if let Some(digits) = digits_suffix(next, "dyn-ring") {
            let rate =
                parse_u64(digits).ok_or_else(|| bad(&format!("bad dyn-ring segment '{next}'")))?;
            if rate == 0 {
                return Err(bad("dyn-ring0 is meaningless (omit the segment)"));
            }
            dyn_ring = Some(rate);
            next = segments.next().ok_or_else(|| bad("missing algorithm"))?;
        }
        let mut crashes = 0;
        if let Some(digits) = digits_suffix(next, "crash") {
            let f = parse_u64(digits).ok_or_else(|| bad(&format!("bad crash segment '{next}'")))?;
            if f == 0 {
                return Err(bad("crash0 must be omitted (canonical form)"));
            }
            crashes = f;
            next = segments.next().ok_or_else(|| bad("missing algorithm"))?;
        }
        if is_reserved_label(next) {
            return Err(bad(&format!(
                "misplaced fault segment '{next}' (canonical order: dyn-ring, crash, algorithm)"
            )));
        }
        let algorithm = Some(next)
            .filter(|s| !s.is_empty() && !s.contains('='))
            .ok_or_else(|| bad("missing algorithm"))?
            .to_string();

        let mut params = Params::new();
        let mut min_distance = 1u64;
        let mut limits = Limits::default();
        let mut last_key: Option<String> = None;
        for seg in segments {
            if let Some((key, value)) = seg.split_once('=') {
                if min_distance != 1 || limits != Limits::default() {
                    return Err(bad("params must precede dist/limits"));
                }
                if last_key.as_deref().is_some_and(|prev| prev >= key) {
                    return Err(bad("params must be sorted and unique (canonical form)"));
                }
                let value = ParamValue::parse(value)
                    .ok_or_else(|| bad(&format!("bad value in '{seg}'")))?;
                last_key = Some(key.to_string());
                params = params.set(key, value);
            } else if let Some(digits) = seg.strip_prefix("dist") {
                if min_distance != 1 || limits != Limits::default() {
                    return Err(bad("duplicate or misordered dist segment"));
                }
                let d =
                    parse_u64(digits).ok_or_else(|| bad(&format!("bad dist segment '{seg}'")))?;
                if d < 2 {
                    return Err(bad("dist0/dist1 must be omitted (canonical form)"));
                }
                min_distance = d;
            } else if let Some(digits) = seg.strip_prefix("rounds") {
                if limits.max_rounds.is_some() || limits.max_steps.is_some() {
                    return Err(bad("duplicate or misordered limit segments"));
                }
                limits.max_rounds =
                    Some(parse_u64(digits).ok_or_else(|| bad(&format!("bad limit '{seg}'")))?);
            } else if let Some(digits) = seg.strip_prefix("steps") {
                if limits.max_steps.is_some() {
                    return Err(bad("duplicate steps limit"));
                }
                limits.max_steps =
                    Some(parse_u64(digits).ok_or_else(|| bad(&format!("bad limit '{seg}'")))?);
            } else {
                return Err(bad(&format!("unexpected segment '{seg}'")));
            }
        }
        Ok(ScenarioSpec {
            family,
            k,
            occupancy,
            placement,
            schedule,
            dyn_ring,
            crashes,
            min_distance,
            algorithm,
            params,
            limits,
        })
    }

    /// Parse and validate in one step.
    pub fn parse(label: &str, registry: &Registry) -> Result<ScenarioSpec, ScenarioError> {
        let spec = ScenarioSpec::from_label(label)?;
        spec.validate(registry)?;
        Ok(spec)
    }

    /// Check this spec against a registry: the algorithm exists, the
    /// placement/schedule combination is supported, every parameter is
    /// declared with the right type, and the numbers are sane.
    pub fn validate(&self, registry: &Registry) -> Result<(), ScenarioError> {
        let factory =
            registry
                .get(&self.algorithm)
                .ok_or_else(|| ScenarioError::UnknownAlgorithm {
                    algorithm: self.algorithm.clone(),
                })?;
        if self.k == 0 {
            return Err(ScenarioError::BadSpec {
                reason: "k must be at least 1".into(),
            });
        }
        if !(self.occupancy > 0.0 && self.occupancy <= 1.0) {
            return Err(ScenarioError::BadSpec {
                reason: format!("occupancy {} outside (0, 1]", self.occupancy),
            });
        }
        if !self.placement.is_rooted() && !factory.supports_general() {
            return Err(ScenarioError::PlacementUnsupported {
                algorithm: self.algorithm.clone(),
                placement: self.placement.label(),
            });
        }
        if self.schedule.is_async() && !factory.supports_async() {
            return Err(ScenarioError::ScheduleUnsupported {
                algorithm: self.algorithm.clone(),
                schedule: self.schedule.label(),
            });
        }
        if let Schedule::AsyncRandom { prob, .. } = self.schedule {
            if !(prob > 0.0 && prob <= 1.0) {
                return Err(ScenarioError::BadSpec {
                    reason: format!("activation probability {prob} outside (0, 1]"),
                });
            }
        }
        if let Schedule::AsyncLagging { max_lag, .. } | Schedule::AsyncTargeted { max_lag } =
            self.schedule
        {
            if max_lag == 0 {
                return Err(ScenarioError::BadSpec {
                    reason: "adversary max_lag must be at least 1".into(),
                });
            }
        }
        if self.min_distance == 0 {
            return Err(ScenarioError::BadSpec {
                reason: "min_distance must be at least 1".into(),
            });
        }
        if let Some(rate) = self.dyn_ring {
            if rate == 0 {
                return Err(ScenarioError::BadSpec {
                    reason: "dyn-ring rate must be at least 1".into(),
                });
            }
            // The arXiv 2408.12220 model removes edges from a *ring* —
            // the one family where every single-edge removal leaves the
            // graph connected, so progress is delayed, never made
            // impossible.
            if !matches!(self.family, GraphFamily::Ring) {
                return Err(ScenarioError::BadSpec {
                    reason: format!(
                        "dyn-ring requires the ring family (a ring minus an edge stays \
                         connected); got '{}'",
                        self.family.label()
                    ),
                });
            }
            if !factory.supports_dynamic() {
                return Err(ScenarioError::FaultUnsupported {
                    algorithm: self.algorithm.clone(),
                    fault: "dyn-ring",
                });
            }
        }
        if self.crashes > 0 {
            if self.crashes >= self.k as u64 {
                return Err(ScenarioError::BadSpec {
                    reason: format!(
                        "crash{} leaves no survivor among k = {} agents (need crashes < k)",
                        self.crashes, self.k
                    ),
                });
            }
            if !factory.supports_crash() {
                return Err(ScenarioError::FaultUnsupported {
                    algorithm: self.algorithm.clone(),
                    fault: "crash",
                });
            }
        }
        // Distance-d dispersion needs room: on a ring of n nodes the k
        // settled agents occupy k disjoint arcs of ≥ d nodes each.
        if self.min_distance >= 2 && matches!(self.family, GraphFamily::Ring) {
            let n_target = ((self.k as f64 / self.occupancy).ceil() as usize).max(self.k);
            if (self.k as u64).saturating_mul(self.min_distance) > n_target as u64 {
                return Err(ScenarioError::BadSpec {
                    reason: format!(
                        "distance-{} dispersion of {} agents needs a ring of at least {} \
                         nodes, but the instance has only {}",
                        self.min_distance,
                        self.k,
                        (self.k as u64).saturating_mul(self.min_distance),
                        n_target
                    ),
                });
            }
        }
        let declared = factory.default_params();
        for (key, value) in self.params.iter() {
            let default = declared
                .get(key)
                .ok_or_else(|| ScenarioError::UnknownParam {
                    algorithm: self.algorithm.clone(),
                    key: key.to_string(),
                })?;
            if default.kind() != value.kind() {
                return Err(ScenarioError::BadParam {
                    key: key.to_string(),
                    reason: format!("expected {}, got {}", default.kind(), value.kind()),
                });
            }
        }
        // Hopeless user limits are rejected before any trial runs. This
        // family-level check uses an *upper* bound on Δ (a sound, weaker
        // lower bound on the time needed); the exact check against the
        // realized instance happens again in [`Limits::resolve`].
        if self.placement.is_rooted() {
            let n_target = ((self.k as f64 / self.occupancy).ceil() as usize).max(self.k);
            let mut lower =
                rooted_round_lower_bound(self.k, self.family.max_degree_upper_bound(n_target));
            if self.dyn_ring.is_some() {
                lower = lower.max(dyn_ring_round_lower_bound(self.k, self.min_distance));
            }
            // Only the limit the scheduler actually consults is bounded
            // (SyncRunner reads max_rounds, AsyncRunner max_steps).
            let (key, given) = if self.schedule.is_async() {
                ("steps", self.limits.max_steps)
            } else {
                ("rounds", self.limits.max_rounds)
            };
            if let Some(given) = given {
                if given < lower {
                    return Err(ScenarioError::LimitTooLow {
                        key,
                        given,
                        lower_bound: lower,
                    });
                }
            }
        }
        Ok(())
    }

    /// Materialize the world and protocol of this scenario under `seed`,
    /// with the same sub-seed derivation [`ScenarioSpec::run`] uses. The
    /// invariant and schedule-fuzz harnesses build through this entry point
    /// so their oracles exercise exactly the instances campaigns run.
    pub fn build(
        &self,
        registry: &Registry,
        seed: u64,
    ) -> Result<(World, Box<dyn AgentProtocol>), ScenarioError> {
        self.build_pooled(registry, seed, &mut WorldPool::new())
    }

    /// [`ScenarioSpec::build`] with a [`WorldPool`]: the world is
    /// constructed inside the pool's recycled allocations when it has any.
    /// State-identical to an unpooled build (the pool contract), so pooled
    /// and unpooled runs of the same seed produce the same outcome.
    pub fn build_pooled(
        &self,
        registry: &Registry,
        seed: u64,
        pool: &mut WorldPool,
    ) -> Result<(World, Box<dyn AgentProtocol>), ScenarioError> {
        self.validate(registry)?;
        let factory = registry.get(&self.algorithm).expect("validated");
        let n_target = ((self.k as f64 / self.occupancy).ceil() as usize).max(self.k);
        // Dense structured families come back implicit (O(1) adjacency
        // arithmetic instead of Θ(m) materialized slots) — what lets the
        // `scale` campaign reach n = 10^6 in memory.
        let graph = self
            .family
            .instantiate_topology(n_target, mix(&[seed, SEED_GRAPH]));
        let k = self.k.min(graph.num_nodes());
        let positions = self
            .placement
            .positions(&graph, k, mix(&[seed, SEED_PLACEMENT]));
        let world = pool.take(graph, positions);
        let protocol = factory.build(&world, &self.params, mix(&[seed, SEED_ALGORITHM]));
        Ok((world, protocol))
    }

    /// The seeded adversary driving this scenario's schedule under `seed`
    /// for a `k`-agent world (`None` for SYNC) — pass
    /// `world.num_agents()`; adversaries fix their agent count at
    /// construction. Companion of [`ScenarioSpec::build`].
    pub fn build_adversary(&self, k: usize, seed: u64) -> Option<Box<dyn Adversary>> {
        self.schedule
            .adversary()
            .map(|(kind, _)| kind.build(k, mix(&[seed, SEED_ADVERSARY])))
    }

    /// The resolved runner configuration for the realized `world`.
    pub fn run_config(&self, world: &World) -> RunConfig {
        self.limits.resolve_with_faults(
            world.num_agents(),
            world.graph().num_edges(),
            world.graph().max_degree(),
            self.schedule,
            self.dyn_ring,
            self.crashes,
        )
    }

    /// The scenario's fault plans under `seed` for a `k`-agent world:
    /// the dynamic-edge adversary and the crash plan, each `None` when the
    /// spec does not ask for that fault dimension. Crash times are drawn
    /// from a horizon scaled to the instance (`2k` rounds under SYNC, `4k`
    /// steps under ASYNC) so every crash lands while the run is still in
    /// flight. Exposed so out-of-band harnesses can replay exactly the
    /// faults a [`ScenarioSpec::run`] of the same seed injects.
    pub fn build_faults(
        &self,
        k: usize,
        seed: u64,
    ) -> (Option<DynamicAdversary>, Option<CrashPlan>) {
        let dynamics = self.dyn_ring.map(|rate| {
            // Rates above u32::MAX are senseless (no graph has that
            // many edges down at once); saturate rather than panic.
            let rate = u32::try_from(rate).unwrap_or(u32::MAX);
            DynamicAdversary::new(mix(&[seed, SEED_DYNAMICS]), rate)
        });
        let crashes = (self.crashes > 0).then(|| {
            let f = (self.crashes as usize).min(k.saturating_sub(1));
            let horizon = if self.schedule.is_async() {
                (4 * k as u64).max(32)
            } else {
                (2 * k as u64).max(16)
            };
            CrashPlan::new(mix(&[seed, SEED_CRASH]), k, f, horizon)
        });
        (dynamics, crashes)
    }

    /// Drive a prepared world/protocol pair to completion under this
    /// spec's schedule and fault plans.
    fn execute(
        &self,
        world: &mut World,
        protocol: &mut dyn AgentProtocol,
        seed: u64,
    ) -> Result<Outcome, RunError> {
        self.execute_recorded(world, protocol, seed, None)
    }

    /// [`ScenarioSpec::execute`] with an optional flight recorder sampling
    /// round/epoch boundaries (see [`disp_sim::timeline`]).
    fn execute_recorded(
        &self,
        world: &mut World,
        protocol: &mut dyn AgentProtocol,
        seed: u64,
        recorder: Option<&mut TimelineRecorder>,
    ) -> Result<Outcome, RunError> {
        let config = self.run_config(world);
        let (dynamics, crashes) = self.build_faults(world.num_agents(), seed);
        match self.build_adversary(world.num_agents(), seed) {
            None => {
                let mut runner = SyncRunner::new(config);
                if let Some(d) = dynamics {
                    runner = runner.with_dynamics(d);
                }
                if let Some(c) = crashes {
                    runner = runner.with_crashes(c);
                }
                runner.run_recorded(world, protocol, recorder)
            }
            Some(adversary) => {
                let mut runner = AsyncRunner::new(config, adversary);
                if let Some(d) = dynamics {
                    runner = runner.with_dynamics(d);
                }
                if let Some(c) = crashes {
                    runner = runner.with_crashes(c);
                }
                runner.run_recorded(world, protocol, recorder)
            }
        }
    }

    /// Execute the scenario under `seed`. The seed fully determines the run:
    /// graph instance, placement, adversary and algorithm-internal
    /// randomness all derive from it through fixed sub-seed tags.
    pub fn run(&self, registry: &Registry, seed: u64) -> Result<ScenarioReport, ScenarioError> {
        let (mut world, mut protocol) = self.build(registry, seed)?;
        let outcome = self.execute(&mut world, protocol.as_mut(), seed)?;
        Ok(ScenarioReport {
            scenario: self.label(),
            outcome,
            dispersed: verify::is_dispersed_at(&world, self.min_distance),
        })
    }

    /// [`ScenarioSpec::run`] with a [`WorldPool`]: the trial's world is
    /// built from the pool's allocations and returned to it afterwards.
    /// The batched micro-trial campaign path drives contiguous runs of
    /// small trials through one pool so only the first trial pays the
    /// world's allocation cost. Reports are byte-identical to unpooled
    /// runs of the same seed.
    pub fn run_pooled(
        &self,
        registry: &Registry,
        seed: u64,
        pool: &mut WorldPool,
    ) -> Result<ScenarioReport, ScenarioError> {
        let (mut world, mut protocol) = self.build_pooled(registry, seed, pool)?;
        let outcome = self.execute(&mut world, protocol.as_mut(), seed)?;
        let report = ScenarioReport {
            scenario: self.label(),
            outcome,
            dispersed: verify::is_dispersed_at(&world, self.min_distance),
        };
        pool.put(world);
        Ok(report)
    }

    /// Like [`ScenarioSpec::run`], but with event tracing enabled for the
    /// whole run: returns the report together with the recorded
    /// [`Trace`](disp_sim::Trace) (Move / CohortMove / Milestone events, in
    /// order, capped at `cap` events — the trace marks itself truncated
    /// rather than growing without bound). Tracing does not perturb the
    /// run: the outcome is identical to an untraced run of the same seed.
    pub fn run_traced(
        &self,
        registry: &Registry,
        seed: u64,
        cap: usize,
    ) -> Result<(ScenarioReport, disp_sim::Trace), ScenarioError> {
        let (mut world, mut protocol) = self.build(registry, seed)?;
        world.enable_trace_with_cap(cap);
        let outcome = self.execute(&mut world, protocol.as_mut(), seed)?;
        let report = ScenarioReport {
            scenario: self.label(),
            outcome,
            dispersed: verify::is_dispersed_at(&world, self.min_distance),
        };
        Ok((report, world.take_trace()))
    }

    /// Like [`ScenarioSpec::run`], but with the flight recorder attached:
    /// returns the report together with the recorded
    /// [`Timeline`](disp_sim::Timeline) — settled/active/parked counts, the
    /// per-role class histogram, cumulative moves, and fault-world gauges
    /// at round (SYNC) / epoch (ASYNC) boundaries, decimated into the
    /// recorder's fixed budget (default
    /// [`disp_sim::DEFAULT_TIMELINE_BUDGET`] points). Recording does not
    /// perturb the run: the outcome is byte-identical to an unrecorded run
    /// of the same seed, and the timeline itself is a pure function of
    /// `(self, seed, budget)`.
    pub fn run_with_timeline(
        &self,
        registry: &Registry,
        seed: u64,
        budget: usize,
    ) -> Result<(ScenarioReport, disp_sim::Timeline), ScenarioError> {
        let (mut world, mut protocol) = self.build(registry, seed)?;
        let mut recorder = TimelineRecorder::with_budget(budget);
        let outcome =
            self.execute_recorded(&mut world, protocol.as_mut(), seed, Some(&mut recorder))?;
        let report = ScenarioReport {
            scenario: self.label(),
            outcome,
            dispersed: verify::is_dispersed_at(&world, self.min_distance),
        };
        Ok((report, recorder.finish()))
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Drive `factory`'s protocol on an explicit graph + position vector —
/// the escape hatch for hand-crafted starts (benches, examples) that the
/// placement families do not cover. Accepts a materialized [`disp_graph::PortGraph`] or
/// an implicit [`Topology`]. Runner limits resolve from the instance
/// ([`Limits::resolve`]). Returns the outcome and whether the final
/// configuration is a valid dispersion.
pub fn run_custom(
    factory: &dyn AlgorithmFactory,
    params: &Params,
    graph: impl Into<Topology>,
    positions: Vec<NodeId>,
    schedule: Schedule,
    limits: Limits,
    seed: u64,
) -> Result<(Outcome, bool), ScenarioError> {
    let graph = graph.into();
    let k = positions.len();
    let config = limits.resolve(k, graph.num_edges(), graph.max_degree(), schedule);
    let mut world = World::new(graph, positions);
    let mut protocol = factory.build(&world, params, mix(&[seed, SEED_ALGORITHM]));
    let outcome = match schedule.adversary() {
        None => SyncRunner::new(config).run(&mut world, protocol.as_mut())?,
        Some((kind, _)) => {
            let adversary = kind.build(k, mix(&[seed, SEED_ADVERSARY]));
            AsyncRunner::new(config, adversary).run(&mut world, protocol.as_mut())?
        }
    };
    Ok((outcome, verify::is_dispersed(&world)))
}

/// Human-readable description of the canonical scenario-label grammar and
/// its vocabulary, as registered in `registry`.
///
/// This is the single source of the grammar help text: the `disp-campaign
/// scenarios` subcommand prints it and `disp-serve` serves it from
/// `GET /scenarios`, so the two entry points can never drift apart.
pub fn grammar_help(registry: &Registry) -> String {
    use disp_sim::Placement;
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("Canonical scenario-label grammar (DESIGN.md §7):\n\n");
    out.push_str("  family/k<K>[/occ<F>]/placement/schedule[/dyn-ring<R>][/crash<F>]\n");
    out.push_str("        /algorithm[/key=value...][/dist<D>][/rounds<N>][/steps<N>]\n\n");
    let families: Vec<String> = GraphFamily::all().iter().map(GraphFamily::label).collect();
    let _ = writeln!(out, "families   : {}", families.join(", "));
    let placements: Vec<String> = Placement::all().iter().map(Placement::label).collect();
    let _ = writeln!(
        out,
        "placements : {} (clusterC for any C ≥ 1)",
        placements.join(", ")
    );
    let schedules = [
        Schedule::Sync,
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.7, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 4,
            seed: 0,
        },
        Schedule::AsyncTargeted { max_lag: 4 },
    ];
    let schedules: Vec<String> = schedules.iter().map(Schedule::label).collect();
    let _ = writeln!(out, "schedules  : {} (any prob/lag)", schedules.join(", "));
    out.push_str("  async-randP : each active agent activates i.i.d. with prob P per step\n");
    out.push_str("  async-lagL  : per-agent periods redrawn from 1..=L after each activation\n");
    out.push_str("  async-targetL : adaptive starvation — the protocol's victim set (the\n");
    out.push_str("                unsettled agents: DFS driver, cohort, probers) fires only\n");
    out.push_str("                every L-th step; everyone else fires every step\n");
    let _ = writeln!(out, "algorithms : {}", registry.labels().join(", "));
    out.push_str("  dyn-ringR : dynamic-graph adversary — R seeded ring edges removed per\n");
    out.push_str("              round, restored the next round (ring family only; the\n");
    out.push_str("              algorithm must declare dynamic support)\n");
    out.push_str("  crashF    : F agents crash at seeded times (crash-tolerant algorithms\n");
    out.push_str("              only; F < k)\n");
    out.push_str("  distD     : termination requires pairwise settled distance >= D\n");
    out.push_str("              (D >= 2; verified by multi-source BFS on the base graph)\n");
    out.push_str("\nexample    : er6/k64/scatter/async-rand0.7/ks-dfs\n");
    out.push_str("example    : line/k100000/rooted/async-target4/probe-dfs\n");
    out.push_str("example    : ring/k24/rooted/sync/dyn-ring1/probe-dfs\n");
    out.push_str("example    : ring/k16/occ0.5/scatter/sync/crash3/random-walk\n");
    out.push_str("example    : ring/k12/occ0.25/rooted/sync/probe-dfs/dist2\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        Registry::builtin()
    }

    #[test]
    fn grammar_help_covers_the_registered_vocabulary() {
        let help = grammar_help(&reg());
        for needle in [
            "family/k<K>",
            "async-target",
            "ks-dfs, probe-dfs, sync-seeker, random-walk",
            "rooted",
            "scatter",
            "dyn-ring",
            "crash",
            "dist",
        ] {
            assert!(help.contains(needle), "grammar help misses '{needle}'");
        }
    }

    #[test]
    fn canonical_floats_round_trip_and_reject_noncanonical() {
        for v in [0.7, 0.5, 1.0, 0.125, 3.0, 1e-3, 123.456] {
            let s = fmt_f64(v);
            assert!(s.contains('.') || s.contains('e'), "{s}");
            assert_eq!(parse_f64(&s), Some(v), "{s}");
        }
        for bad in ["0.70", ".5", "1", "01.0", "nan", "inf", "1.", ""] {
            assert_eq!(parse_f64(bad), None, "'{bad}' must be rejected");
        }
    }

    #[test]
    fn schedule_labels_round_trip() {
        for sched in [
            Schedule::Sync,
            Schedule::AsyncRoundRobin,
            Schedule::AsyncRandom { prob: 0.7, seed: 0 },
            Schedule::AsyncRandom { prob: 1.0, seed: 0 },
            Schedule::AsyncLagging {
                max_lag: 4,
                seed: 0,
            },
            Schedule::AsyncTargeted { max_lag: 4 },
        ] {
            assert_eq!(Schedule::from_label(&sched.label()), Some(sched));
        }
        assert_eq!(Schedule::Sync.label(), "sync");
        assert_eq!(
            Schedule::AsyncTargeted { max_lag: 6 }.label(),
            "async-target6"
        );
        assert_eq!(Schedule::from_label("async-target0"), None);
        assert_eq!(Schedule::from_label("async-target04"), None);
        assert_eq!(
            Schedule::AsyncRandom { prob: 1.0, seed: 9 }.label(),
            "async-rand1.0",
            "integral probabilities keep their float marker"
        );
        assert_eq!(Schedule::from_label("async-rand0.70"), None);
        assert_eq!(Schedule::from_label("async-rand0.0"), None);
        assert_eq!(Schedule::from_label("async-lag0"), None);
        assert_eq!(Schedule::from_label("async-lag04"), None);
        assert_eq!(Schedule::from_label("nope"), None);
    }

    #[test]
    fn param_values_recover_their_type_from_text() {
        for v in [
            ParamValue::U64(0),
            ParamValue::U64(17),
            ParamValue::F64(0.5),
            ParamValue::F64(2.0),
            ParamValue::Bool(true),
            ParamValue::Bool(false),
        ] {
            assert_eq!(ParamValue::parse(&v.fmt()), Some(v));
        }
        assert_eq!(ParamValue::parse("007"), None, "non-canonical integer");
        assert_eq!(ParamValue::parse(""), None);
    }

    #[test]
    fn labels_are_stable() {
        let spec = ScenarioSpec::new(GraphFamily::RandomTree, 64, "probe-dfs");
        assert_eq!(spec.label(), "rtree/k64/rooted/sync/probe-dfs");
        let spec = ScenarioSpec::new(GraphFamily::ErdosRenyi { avg_degree: 6.0 }, 32, "ks-dfs")
            .with_placement(Placement::Clustered { clusters: 4 })
            .with_schedule(Schedule::AsyncLagging {
                max_lag: 4,
                seed: 77,
            });
        assert_eq!(spec.label(), "er6/k32/cluster4/async-lag4/ks-dfs");
        let spec = ScenarioSpec::new(GraphFamily::Star, 96, "sync-seeker")
            .with_param("wait", ParamValue::U64(6))
            .with_param("probers", ParamValue::U64(32))
            .with_occupancy(0.5)
            .with_limits(Limits {
                max_rounds: Some(10_000),
                max_steps: None,
            });
        assert_eq!(
            spec.label(),
            "star/k96/occ0.5/rooted/sync/sync-seeker/probers=32/wait=6/rounds10000"
        );
        let spec = ScenarioSpec::new(GraphFamily::Ring, 24, "probe-dfs").with_dynamic_ring(1);
        assert_eq!(spec.label(), "ring/k24/rooted/sync/dyn-ring1/probe-dfs");
        let spec = ScenarioSpec::new(GraphFamily::Ring, 16, "random-walk")
            .with_occupancy(0.5)
            .with_placement(Placement::ScatteredUniform)
            .with_crashes(3);
        assert_eq!(
            spec.label(),
            "ring/k16/occ0.5/scatter/sync/crash3/random-walk"
        );
        let spec = ScenarioSpec::new(GraphFamily::Ring, 12, "probe-dfs")
            .with_occupancy(0.25)
            .with_min_distance(2);
        assert_eq!(spec.label(), "ring/k12/occ0.25/rooted/sync/probe-dfs/dist2");
    }

    #[test]
    fn labels_round_trip_to_identical_specs() {
        let specs = [
            ScenarioSpec::new(GraphFamily::RandomTree, 64, "probe-dfs"),
            ScenarioSpec::new(GraphFamily::Grid, 20, "ks-dfs")
                .with_placement(Placement::ScatteredUniform)
                .with_schedule(Schedule::AsyncRandom { prob: 0.7, seed: 0 }),
            ScenarioSpec::new(GraphFamily::Star, 96, "sync-seeker")
                .with_param("wait", ParamValue::U64(6))
                .with_occupancy(0.25)
                .with_limits(Limits {
                    max_rounds: Some(9),
                    max_steps: Some(11),
                }),
            ScenarioSpec::new(GraphFamily::Ring, 24, "probe-dfs")
                .with_dynamic_ring(2)
                .with_crashes(3)
                .with_min_distance(4)
                .with_limits(Limits {
                    max_rounds: Some(100_000),
                    max_steps: None,
                }),
            ScenarioSpec::new(GraphFamily::Ring, 16, "random-walk")
                .with_placement(Placement::ScatteredUniform)
                .with_occupancy(0.5)
                .with_crashes(1),
        ];
        for spec in specs {
            let label = spec.label();
            let back = ScenarioSpec::from_label(&label).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.label(), label, "label → spec → label is identity");
        }
    }

    #[test]
    fn noncanonical_labels_are_rejected() {
        for label in [
            "",
            "rtree",
            "rtree/k0/rooted/sync/ks-dfs",
            "rtree/64/rooted/sync/ks-dfs",
            "nope/k8/rooted/sync/ks-dfs",
            "rtree/k8/occ1.0/rooted/sync/ks-dfs",
            "rtree/k8/occ0.70/rooted/sync/ks-dfs",
            "rtree/k8/hovering/sync/ks-dfs",
            "rtree/k8/rooted/whenever/ks-dfs",
            "rtree/k8/rooted/sync",
            "rtree/k8/rooted/sync/ks-dfs/b=1/a=1",
            "rtree/k8/rooted/sync/ks-dfs/a=1/a=2",
            "rtree/k8/rooted/sync/ks-dfs/rounds5/a=1",
            "rtree/k8/rooted/sync/ks-dfs/steps5/rounds5",
            "rtree/k8/rooted/sync/ks-dfs/bogus",
            "star/k8/rooted/sync/sync-seeker/wait=1.5.2",
            "rtree/k08/rooted/sync/ks-dfs",
            "rtree/k+8/rooted/sync/ks-dfs",
            "rtree/k8/cluster04/sync/ks-dfs",
            "rtree/k8/rooted/async-lag04/ks-dfs",
            "rtree/k8/rooted/sync/ks-dfs/rounds07",
            "rtree/k8/rooted/sync/ks-dfs/steps+5",
            "ring/k8/rooted/sync/dyn-ring0/probe-dfs",
            "ring/k8/rooted/sync/dyn-ring01/probe-dfs",
            "ring/k8/rooted/sync/crash0/random-walk",
            "ring/k8/rooted/sync/crash01/random-walk",
            "ring/k8/rooted/sync/crash1/dyn-ring1/random-walk",
            "ring/k8/rooted/sync/dyn-ring1/crash1",
            "ring/k8/rooted/sync/probe-dfs/dist0",
            "ring/k8/rooted/sync/probe-dfs/dist1",
            "ring/k8/rooted/sync/probe-dfs/dist02",
            "ring/k8/rooted/sync/probe-dfs/rounds5/dist2",
            "ring/k8/rooted/sync/probe-dfs/dist2/a=1",
        ] {
            let err = ScenarioSpec::from_label(label).unwrap_err();
            assert!(
                matches!(err, ScenarioError::BadLabel { .. }),
                "'{label}' gave {err:?}"
            );
        }
    }

    #[test]
    fn validation_catches_illegal_combinations() {
        let r = reg();
        let unknown = ScenarioSpec::new(GraphFamily::Line, 8, "quantum-dfs");
        assert!(matches!(
            unknown.validate(&r),
            Err(ScenarioError::UnknownAlgorithm { .. })
        ));
        let scattered_probe = ScenarioSpec::new(GraphFamily::Line, 8, "probe-dfs")
            .with_placement(Placement::ScatteredUniform);
        assert!(matches!(
            scattered_probe.validate(&r),
            Err(ScenarioError::PlacementUnsupported { .. })
        ));
        let async_seeker = ScenarioSpec::new(GraphFamily::Line, 8, "sync-seeker")
            .with_schedule(Schedule::AsyncRoundRobin);
        assert!(matches!(
            async_seeker.validate(&r),
            Err(ScenarioError::ScheduleUnsupported { .. })
        ));
        let bad_param = ScenarioSpec::new(GraphFamily::Line, 8, "sync-seeker")
            .with_param("warp", ParamValue::U64(9));
        assert!(matches!(
            bad_param.validate(&r),
            Err(ScenarioError::UnknownParam { .. })
        ));
        let bad_type = ScenarioSpec::new(GraphFamily::Line, 8, "sync-seeker")
            .with_param("wait", ParamValue::F64(1.5));
        assert!(matches!(
            bad_type.validate(&r),
            Err(ScenarioError::BadParam { .. })
        ));
        let bad_occ = ScenarioSpec::new(GraphFamily::Line, 8, "ks-dfs").with_occupancy(1.5);
        assert!(matches!(
            bad_occ.validate(&r),
            Err(ScenarioError::BadSpec { .. })
        ));
        // A cluster1 start is rooted-equivalent, so rooted-only algorithms
        // accept it.
        let cluster1 = ScenarioSpec::new(GraphFamily::Line, 8, "probe-dfs")
            .with_placement(Placement::Clustered { clusters: 1 });
        cluster1.validate(&r).unwrap();
    }

    #[test]
    fn fault_dimensions_validate_against_family_and_capabilities() {
        let r = reg();
        // dyn-ring demands the ring family …
        let dyn_line = ScenarioSpec::new(GraphFamily::Line, 8, "probe-dfs").with_dynamic_ring(1);
        assert!(matches!(
            dyn_line.validate(&r),
            Err(ScenarioError::BadSpec { .. })
        ));
        // … and an algorithm that declares dynamic support.
        let dyn_ks = ScenarioSpec::new(GraphFamily::Ring, 8, "ks-dfs").with_dynamic_ring(1);
        assert!(matches!(
            dyn_ks.validate(&r),
            Err(ScenarioError::FaultUnsupported {
                fault: "dyn-ring",
                ..
            })
        ));
        ScenarioSpec::new(GraphFamily::Ring, 8, "probe-dfs")
            .with_dynamic_ring(1)
            .validate(&r)
            .unwrap();
        // Crashes demand a crash-tolerant algorithm …
        let crash_probe = ScenarioSpec::new(GraphFamily::Ring, 8, "probe-dfs").with_crashes(2);
        assert!(matches!(
            crash_probe.validate(&r),
            Err(ScenarioError::FaultUnsupported { fault: "crash", .. })
        ));
        // … and at least one survivor.
        let all_dead = ScenarioSpec::new(GraphFamily::Ring, 8, "random-walk").with_crashes(8);
        assert!(matches!(
            all_dead.validate(&r),
            Err(ScenarioError::BadSpec { .. })
        ));
        ScenarioSpec::new(GraphFamily::Ring, 8, "random-walk")
            .with_crashes(7)
            .validate(&r)
            .unwrap();
        // Distance-k dispersion must fit on the ring: k·d ≤ n.
        let cramped = ScenarioSpec::new(GraphFamily::Ring, 8, "probe-dfs").with_min_distance(2);
        assert!(matches!(
            cramped.validate(&r),
            Err(ScenarioError::BadSpec { .. })
        ));
        ScenarioSpec::new(GraphFamily::Ring, 8, "probe-dfs")
            .with_min_distance(2)
            .with_occupancy(0.5)
            .validate(&r)
            .unwrap();
        // A user limit below the dynamic-ring frontier bound is typed.
        let tight = ScenarioSpec::new(GraphFamily::Ring, 32, "probe-dfs")
            .with_dynamic_ring(1)
            .with_limits(Limits {
                max_rounds: Some(20),
                max_steps: None,
            });
        match tight.validate(&r) {
            Err(ScenarioError::LimitTooLow {
                key,
                given,
                lower_bound,
            }) => {
                assert_eq!(key, "rounds");
                assert_eq!(given, 20);
                assert_eq!(lower_bound, 31, "(k-1)·max(d,1) = 31 beats ⌈31/2⌉");
            }
            other => panic!("expected LimitTooLow, got {other:?}"),
        }
    }

    #[test]
    fn every_builtin_runs_through_the_scenario_entry_point() {
        let r = reg();
        for algo in r.labels() {
            let spec = ScenarioSpec::new(GraphFamily::RandomTree, 20, algo);
            let report = spec.run(&r, 1).unwrap();
            assert!(report.dispersed, "{algo} must disperse");
            assert!(report.outcome.terminated);
            assert_eq!(report.scenario, spec.label());
        }
    }

    #[test]
    fn async_schedules_work_for_async_capable_algorithms() {
        let r = reg();
        for schedule in [
            Schedule::AsyncRoundRobin,
            Schedule::AsyncRandom { prob: 0.5, seed: 0 },
            Schedule::AsyncLagging {
                max_lag: 4,
                seed: 0,
            },
            Schedule::AsyncTargeted { max_lag: 4 },
        ] {
            for algo in ["ks-dfs", "probe-dfs"] {
                let spec = ScenarioSpec::new(GraphFamily::ErdosRenyi { avg_degree: 6.0 }, 24, algo)
                    .with_schedule(schedule);
                let report = spec.run(&r, 2).unwrap();
                assert!(report.dispersed, "{algo} under {schedule:?}");
                assert!(report.outcome.epochs >= 1);
            }
        }
    }

    #[test]
    fn placement_families_run_through_the_general_algorithm() {
        let r = reg();
        for placement in Placement::all() {
            let spec = ScenarioSpec::new(GraphFamily::Grid, 18, "ks-dfs").with_placement(placement);
            let report = spec.run(&r, 3).unwrap();
            assert!(report.dispersed, "{placement} start must disperse");
        }
    }

    #[test]
    fn runs_are_seed_deterministic_and_seed_sensitive() {
        let r = reg();
        let spec = ScenarioSpec::new(GraphFamily::RandomTree, 24, "ks-dfs")
            .with_placement(Placement::ScatteredUniform)
            .with_schedule(Schedule::AsyncRandom { prob: 0.6, seed: 0 });
        let a = spec.run(&r, 7).unwrap();
        let b = spec.run(&r, 7).unwrap();
        let c = spec.run(&r, 8).unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_ne!(
            (a.outcome.steps, a.outcome.total_moves),
            (c.outcome.steps, c.outcome.total_moves),
            "different seeds must differ somewhere"
        );
    }

    #[test]
    fn limit_overrides_surface_as_run_errors() {
        let r = reg();
        // Above the trivial lower bound but far below what the run needs:
        // the run starts and is recorded as a faithful limit hit.
        let spec = ScenarioSpec::new(GraphFamily::Line, 32, "probe-dfs").with_limits(Limits {
            max_rounds: Some(20),
            max_steps: Some(20),
        });
        match spec.run(&r, 1) {
            Err(ScenarioError::Run(RunError::LimitExceeded { outcome })) => {
                assert!(!outcome.terminated);
                assert_eq!(outcome.rounds, 20);
            }
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn limits_below_the_trivial_lower_bound_are_typed_errors() {
        let r = reg();
        // 32 rooted agents on a line (Δ = 2) need at least ⌈31/2⌉ = 16
        // rounds to reach 32 distinct nodes; rounds=3 can never suffice.
        let spec = ScenarioSpec::new(GraphFamily::Line, 32, "probe-dfs").with_limits(Limits {
            max_rounds: Some(3),
            max_steps: None,
        });
        match spec.run(&r, 1) {
            Err(ScenarioError::LimitTooLow {
                key,
                given,
                lower_bound,
            }) => {
                assert_eq!(key, "rounds");
                assert_eq!(given, 3);
                assert_eq!(lower_bound, 16);
            }
            other => panic!("expected LimitTooLow, got {other:?}"),
        }
        // Non-rooted placements have no such bound — tiny limits run (and
        // get recorded as limit hits) instead of erroring.
        let scattered = ScenarioSpec::new(GraphFamily::Line, 32, "ks-dfs")
            .with_placement(Placement::ScatteredUniform)
            .with_limits(Limits {
                max_rounds: Some(3),
                max_steps: Some(3),
            });
        assert!(matches!(
            scattered.run(&r, 1),
            Err(ScenarioError::Run(RunError::LimitExceeded { .. }))
        ));
        // The bound only applies to the limit the scheduler consults: a
        // tiny /stepsN on a SYNC run (which never reads max_steps) is fine,
        // as is a tiny /roundsN on an ASYNC run.
        let sync_tiny_steps =
            ScenarioSpec::new(GraphFamily::Line, 32, "probe-dfs").with_limits(Limits {
                max_rounds: None,
                max_steps: Some(3),
            });
        assert!(sync_tiny_steps.run(&r, 1).is_ok(), "sync ignores max_steps");
        let async_tiny_rounds = ScenarioSpec::new(GraphFamily::Line, 32, "probe-dfs")
            .with_schedule(Schedule::AsyncRoundRobin)
            .with_limits(Limits {
                max_rounds: Some(3),
                max_steps: None,
            });
        assert!(
            async_tiny_rounds.run(&r, 1).is_ok(),
            "async ignores max_rounds"
        );
    }

    #[test]
    fn derived_default_limits_scale_with_the_instance() {
        // k = 10^6 on a line: the legacy fixed default (5·10^6 rounds) was
        // near the actual need; the derived budget leaves ample headroom.
        let cfg = Limits::default().resolve(1_000_000, 999_999, 2, Schedule::Sync);
        assert!(cfg.max_rounds > 1_000_000_000, "{}", cfg.max_rounds);
        assert_eq!(cfg.memory_sample_interval, 0, "geometric sampling");
        // Small instances keep dense sampling and a modest budget.
        let cfg = Limits::default().resolve(64, 63, 2, Schedule::Sync);
        assert_eq!(cfg.memory_sample_interval, 4);
        assert!(cfg.max_rounds >= 10_000);
        // Step budgets scale with the adversary's epoch cost.
        let rand =
            Limits::default().resolve(64, 63, 2, Schedule::AsyncRandom { prob: 0.5, seed: 0 });
        let sync = Limits::default().resolve(64, 63, 2, Schedule::Sync);
        assert!(rand.max_steps > sync.max_steps);
    }

    #[test]
    fn rooted_lower_bound_formula() {
        assert_eq!(rooted_round_lower_bound(1, 2), 0);
        assert_eq!(rooted_round_lower_bound(32, 2), 16, "line ball is 2d+1");
        assert_eq!(rooted_round_lower_bound(4, 3), 1, "1 + 3 ≥ 4");
        assert_eq!(rooted_round_lower_bound(5, 3), 2);
        // Δ = k-1 (star/complete): one hop suffices.
        assert_eq!(rooted_round_lower_bound(64, 63), 1);
    }

    #[test]
    fn sync_seeker_params_reach_the_protocol() {
        let r = reg();
        let default = ScenarioSpec::new(GraphFamily::Star, 48, "sync-seeker");
        let waity = default
            .clone()
            .with_param("wait", ParamValue::U64(6))
            .with_param("probers", ParamValue::U64(2));
        let fast = default.run(&r, 4).unwrap();
        let slow = waity.run(&r, 4).unwrap();
        assert!(fast.dispersed && slow.dispersed);
        assert!(
            slow.outcome.rounds > fast.outcome.rounds,
            "longer waits + capped seekers must cost rounds ({} vs {})",
            slow.outcome.rounds,
            fast.outcome.rounds
        );
    }

    #[test]
    fn registry_is_open_and_guards_duplicates() {
        let r = reg();
        assert_eq!(
            r.labels(),
            vec!["ks-dfs", "probe-dfs", "sync-seeker", "random-walk"]
        );
        assert!(r.get("ks-dfs").is_some());
        assert!(r.get("nope").is_none());
        let result = std::panic::catch_unwind(|| Registry::builtin().with(KsDfsFactory));
        assert!(result.is_err(), "duplicate labels must be rejected");
    }

    #[test]
    fn registry_rejects_reserved_grammar_tokens() {
        struct Impostor;
        impl AlgorithmFactory for Impostor {
            fn label(&self) -> &'static str {
                "crash2"
            }
            fn build(&self, world: &World, _: &Params, seed: u64) -> Box<dyn AgentProtocol> {
                Box::new(KsDfs::with_seed(world, seed))
            }
        }
        let result = std::panic::catch_unwind(|| Registry::empty().with(Impostor));
        assert!(result.is_err(), "'crash2' would shadow the crash token");
        // Non-digit suffixes are fine: 'crash-test' is a legal label shape.
        assert!(!is_reserved_label("crash-test"));
        assert!(!is_reserved_label("crash"));
        assert!(is_reserved_label("dyn-ring12"));
        assert!(is_reserved_label("dist3"));
    }

    #[test]
    fn dynamic_ring_runs_disperse_and_are_deterministic() {
        let r = reg();
        let spec = ScenarioSpec::new(GraphFamily::Ring, 24, "probe-dfs").with_dynamic_ring(1);
        let a = spec.run(&r, 5).unwrap();
        let b = spec.run(&r, 5).unwrap();
        assert!(a.dispersed, "probe-dfs must survive per-round edge churn");
        assert!(a.outcome.terminated);
        assert_eq!(a.outcome, b.outcome, "fault injection is seed-determined");
        // The churn costs rounds relative to the static ring.
        let static_spec = ScenarioSpec::new(GraphFamily::Ring, 24, "probe-dfs");
        let s = static_spec.run(&r, 5).unwrap();
        assert!(
            a.outcome.rounds >= s.outcome.rounds,
            "dynamic ({}) vs static ({})",
            a.outcome.rounds,
            s.outcome.rounds
        );
    }

    #[test]
    fn crash_runs_disperse_the_survivors() {
        let r = reg();
        let spec = ScenarioSpec::new(GraphFamily::Ring, 12, "random-walk")
            .with_occupancy(0.5)
            .with_placement(Placement::ScatteredUniform)
            .with_crashes(3);
        let a = spec.run(&r, 9).unwrap();
        let b = spec.run(&r, 9).unwrap();
        assert!(a.outcome.terminated);
        assert!(a.dispersed, "survivors must still disperse");
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn timeline_runs_match_plain_runs_and_sample_role_histograms() {
        let r = reg();
        for label in [
            "ring/k16/rooted/sync/probe-dfs",
            "ring/k16/rooted/sync/ks-dfs",
            "line/k12/rooted/sync/sync-seeker",
            "ring/k16/rooted/async-lag3/probe-dfs",
        ] {
            let spec = ScenarioSpec::parse(label, &r).unwrap();
            let plain = spec.run(&r, 11).unwrap();
            let (report, tl) = spec.run_with_timeline(&r, 11, 4096).unwrap();
            assert_eq!(
                plain.outcome, report.outcome,
                "{label}: recording must not change results"
            );
            assert_eq!(plain.dispersed, report.dispersed, "{label}");
            let first = tl.points.first().unwrap();
            let last = tl.points.last().unwrap();
            assert_eq!(first.time, 0, "{label}");
            assert_eq!(
                last.time,
                if matches!(spec.schedule, Schedule::Sync) {
                    report.outcome.rounds
                } else {
                    report.outcome.epochs
                },
                "{label}: final point sits at the end of the run"
            );
            let k = report.outcome.k as u64;
            assert_eq!(last.settled, k, "{label}: everyone settles at the end");
            assert_eq!(last.moves, report.outcome.total_moves, "{label}");
            // Every point's histogram covers all agents and names a
            // "settled" class that matches the derived settled count.
            for p in &tl.points {
                let total: u64 = p.classes.iter().map(|&(_, c)| c as u64).sum();
                assert_eq!(total + p.crashed, k, "{label} t={}", p.time);
                let settled: u64 = p
                    .classes
                    .iter()
                    .filter(|(n, _)| *n == "settled")
                    .map(|&(_, c)| c as u64)
                    .sum();
                assert_eq!(settled, p.settled, "{label} t={}", p.time);
            }
            // And the whole thing is deterministic.
            let (_, tl2) = spec.run_with_timeline(&r, 11, 4096).unwrap();
            assert_eq!(tl, tl2, "{label}: timeline is a pure function of the run");
        }
    }

    #[test]
    fn timeline_budget_bounds_points_on_long_runs() {
        let r = reg();
        // A 256-agent rooted line takes hundreds of rounds — enough to
        // force decimation at a budget of 32.
        let spec = ScenarioSpec::parse("line/k256/rooted/sync/probe-dfs", &r).unwrap();
        let (report, tl) = spec.run_with_timeline(&r, 7, 32).unwrap();
        assert!(report.outcome.rounds > 64, "run long enough to decimate");
        assert!(tl.points.len() <= 33, "{} points", tl.points.len());
        assert!(tl.stride > 1);
        assert!(tl.decimation_level() >= 1);
        assert_eq!(tl.points.first().unwrap().time, 0);
        assert_eq!(tl.points.last().unwrap().time, report.outcome.rounds);
    }

    #[test]
    fn distance_k_scenarios_verify_with_the_stronger_predicate() {
        let r = reg();
        // occ0.25 → ring of 48 nodes for 12 agents: plain probe-dfs packs
        // them contiguously, which can never satisfy dist2 — the report
        // must come back undispersed rather than silently passing.
        let spec = ScenarioSpec::new(GraphFamily::Ring, 12, "probe-dfs")
            .with_occupancy(0.25)
            .with_min_distance(2);
        let report = spec.run(&r, 3).unwrap();
        assert!(report.outcome.terminated);
        assert!(
            !report.dispersed,
            "contiguous settlement cannot be distance-2 dispersed"
        );
    }
}
