//! Seeker-based synchronous dispersion (`Sync_Probe`, Algorithms 2 and 5–7).
//!
//! This protocol reproduces the *probing structure* of the paper's SYNC
//! algorithm `RootedSyncDisp`: at every DFS node the leader dispatches a pool
//! of **seekers** in parallel, one unprobed port each; each seeker makes a
//! round trip (optionally waiting a configurable number of rounds at the
//! neighbor, the paper's 6-round wait) and reports whether the neighbor
//! hosts a settler. With a pool of `p` seekers, `min{k, δ_w}` ports are
//! covered in `⌈min{k, δ_w}/p⌉` iterations of `O(1)` rounds each.
//!
//! **Fidelity note (see `DESIGN.md`).** The full Theorem 6.1 algorithm
//! additionally leaves ≥ ⌈k/3⌉ DFS-tree nodes empty (Algorithm 1, module
//! [`crate::empty_node`]) and covers them by oscillating settlers (module
//! [`crate::oscillation`]) so that the seeker pool never shrinks below
//! ⌈k/3⌉. This implementation settles an agent at every visited node
//! instead, so the pool shrinks as the DFS progresses: the measured time is
//! `O(k)` whenever node degrees stay below the remaining pool size and
//! degrades toward the `O(k log k)` of the DISC'24 baseline on high-degree
//! graphs. The empty-node selection and oscillation components are
//! implemented and verified separately; wiring them into this protocol is
//! the one fidelity gap of this reproduction (tracked in `EXPERIMENTS.md`).
//!
//! ## Structure-of-arrays state (DESIGN.md §13)
//!
//! Per-agent state is a `u8` tag (role × stage, booleans such as a seeker's
//! `saw_settler` folded in — see the private `tag` module) plus packed parallel fields: `p0`
//! (a seeker's probe port / a settler's parent port, `Port(0)` = none),
//! `p1` (a seeker's return pin) and `aux0` (a seeker's wait counter). The
//! protocol has exactly **one** leader, so its phase payload — group size,
//! movement order, probe counters — lives in plain struct scalars instead
//! of per-agent enum variants, and a `node → settler` cache replaces the
//! per-activation co-location scans for "does this node host a settler"
//! (settlers never move in this protocol, so the cache is trivially
//! coherent). The `tests/soa_differential.rs` suite pins this rewrite
//! step-for-step to the retained enum-of-structs reference.

use disp_graph::Port;
use disp_sim::{bits, ActivationCtx, AgentId, AgentProtocol, World};

const NO_SETTLER: u32 = u32::MAX;
/// The `Option<Port>` sentinel: ports are 1-based, so `Port(0)` is free.
const NO_PORT: Port = Port(0);

#[inline]
fn opt(p: Port) -> Option<Port> {
    (p != NO_PORT).then_some(p)
}

#[inline]
fn enc(p: Option<Port>) -> Port {
    p.unwrap_or(NO_PORT)
}

/// Tuning knobs (also used by the ablation benches).
#[derive(Debug, Clone, Copy)]
pub struct SyncConfig {
    /// Rounds a seeker waits at the probed neighbor before returning. The
    /// paper uses 6 (needed when tree nodes can be empty and are covered by
    /// oscillating settlers); with every node settled, 1 suffices.
    pub wait_rounds: u32,
    /// Cap on the number of seekers dispatched per probe iteration
    /// (`None` = use every available unsettled agent, the default).
    pub max_probers: Option<usize>,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            wait_rounds: 1,
            max_probers: None,
        }
    }
}

/// The flattened role × stage tag (`_F`/`_T` fold the `saw_settler` /
/// `executed` booleans into the byte).
mod tag {
    /// Follower with `executed == false` (group-order flip protocol).
    pub const FOLLOWER_F: u8 = 0;
    /// Follower with `executed == true`.
    pub const FOLLOWER_T: u8 = 1;
    /// Settled at the current node. Fields: `p0` = parent port (opt).
    pub const SETTLED: u8 = 2;

    // Seeker (fields: `p0` = probe port, `p1` = return pin (opt), `aux0` =
    // wait rounds left; `saw_settler` in the tag).
    pub const SEEK_OUT: u8 = 3;
    pub const SEEK_WAIT_F: u8 = 4;
    pub const SEEK_WAIT_T: u8 = 5;
    pub const SEEK_RET_F: u8 = 6;
    pub const SEEK_RET_T: u8 = 7;

    // Leader phases (payload in the protocol's scalar fields — there is
    // exactly one leader).
    pub const LEAD_DECIDE: u8 = 8;
    pub const LEAD_PROBE_ASSIGN: u8 = 9;
    pub const LEAD_PROBE_WAIT: u8 = 10;
    pub const LEAD_SOLO_OUT: u8 = 11;
    pub const LEAD_SOLO_WAIT_F: u8 = 12;
    pub const LEAD_SOLO_WAIT_T: u8 = 13;
    pub const LEAD_SOLO_RET_F: u8 = 14;
    pub const LEAD_SOLO_RET_T: u8 = 15;
    pub const LEAD_DEPART_FORWARD: u8 = 16;
    pub const LEAD_DEPART_BACKTRACK: u8 = 17;
    pub const LEAD_ARRIVE_FORWARD: u8 = 18;
}

/// Number of memory classes (coarse roles with a fixed bit footprint):
/// follower, settled, seeker, leader.
const CLASSES: usize = 4;

/// Class names in [`class`] index order, for the flight recorder's
/// per-role histogram ([`AgentProtocol::class_counts`]). The settled class
/// must be named exactly `"settled"` — the recorder keys on it.
const CLASS_NAMES: [&str; CLASSES] = ["follower", "settled", "seeker", "leader"];

/// The memory class of a tag — the coarse role.
#[inline]
fn class(t: u8) -> usize {
    match t {
        tag::FOLLOWER_F | tag::FOLLOWER_T => 0,
        tag::SETTLED => 1,
        tag::SEEK_OUT..=tag::SEEK_RET_T => 2,
        _ => 3,
    }
}

/// Per-class footprint in bits (the same accounting the pre-SoA enum
/// variants used).
fn class_bits_table(k: usize, max_degree: usize) -> [usize; CLASSES] {
    let id = bits::id_bits(k);
    let port = bits::port_bits(max_degree);
    let opt_port = bits::opt_port_bits(max_degree);
    [
        // follower: id + executed flag
        id + 1,
        // settled: id + parent port
        id + opt_port,
        // seeker: id + stage + port + pin + wait counter + flag
        id + 2 + port + opt_port + bits::counter_bits(8) + 1,
        // leader: id + phase + counters + ports
        id + 3
            + bits::counter_bits(k as u64)
            + 1
            + port
            + 2 * opt_port
            + bits::counter_bits(max_degree as u64)
            + opt_port
            + opt_port,
    ]
}

/// The seeker-probing SYNC dispersion protocol (rooted configurations),
/// structure-of-arrays layout.
#[derive(Debug)]
pub struct RootedSyncDisp {
    config: SyncConfig,
    /// Role × stage per agent — the dispatch byte (see [`tag`]).
    tags: Vec<u8>,
    /// Number of agents per memory class; with `class_bits` this makes
    /// peak-memory sampling `O(1)` instead of an `O(k)` scan.
    class_counts: [u32; CLASSES],
    /// Per-class footprint in bits (a function of `k` and `Δ` only).
    class_bits: [usize; CLASSES],
    /// Seeker probe port / settler parent port (`NO_PORT` = none).
    p0: Vec<Port>,
    /// Seeker return pin (`NO_PORT` = none).
    p1: Vec<Port>,
    /// Seeker wait counter.
    aux0: Vec<u32>,
    leader: AgentId,
    k: usize,
    settled_count: usize,
    /// `node → settler agent` cache (settlers never move here).
    settled_at: Vec<u32>,
    /// Reusable buffer for the seeker-pool and returned-seeker scans.
    scratch: Vec<AgentId>,
    // --- leader phase payload (one leader ⇒ plain scalars) ---
    /// Unsettled followers remaining in the group.
    group_size: usize,
    /// Group movement order: the port (`NO_PORT` = no order yet) ...
    order_port: Port,
    /// ... and its flip bit (the followers' "have I executed this order").
    order_flip: bool,
    /// Pin of the edge the leader arrived through (opt).
    arrival_pin: Port,
    /// Ports checked at the current node.
    checked: u32,
    /// Smallest port found leading to a fully-unsettled neighbor (opt).
    next_empty: Port,
    /// Pin recorded for the leader's own solo probe (opt).
    solo_pin: Port,
    /// Seekers dispatched in the current probe iteration.
    assigned: u32,
    /// Rounds left in the leader's solo wait.
    solo_left: u32,
    max_probe_iterations: u32,
    current_probe_iterations: u32,
}

impl RootedSyncDisp {
    /// Build the protocol for a rooted world with default configuration.
    pub fn new(world: &World) -> Self {
        Self::with_config(world, SyncConfig::default())
    }

    /// Build the protocol with explicit tuning knobs.
    pub fn with_config(world: &World, config: SyncConfig) -> Self {
        let k = world.num_agents();
        let root = world.position(AgentId(0));
        assert!(
            (0..k).all(|i| world.position(AgentId(i as u32)) == root),
            "RootedSyncDisp handles rooted initial configurations"
        );
        let leader = AgentId(k as u32 - 1);
        let mut tags = vec![tag::FOLLOWER_F; k];
        tags[leader.index()] = tag::LEAD_DECIDE;
        let mut class_counts = [0u32; CLASSES];
        class_counts[0] = k as u32 - 1; // followers
        class_counts[3] = 1; // the leader
        RootedSyncDisp {
            config,
            tags,
            class_counts,
            class_bits: class_bits_table(k, world.graph().max_degree()),
            p0: vec![NO_PORT; k],
            p1: vec![NO_PORT; k],
            aux0: vec![0; k],
            leader,
            k,
            settled_count: 0,
            settled_at: vec![NO_SETTLER; world.graph().num_nodes()],
            scratch: Vec::new(),
            group_size: k - 1,
            order_port: NO_PORT,
            order_flip: false,
            arrival_pin: NO_PORT,
            checked: 0,
            next_empty: NO_PORT,
            solo_pin: NO_PORT,
            assigned: 0,
            solo_left: 0,
            max_probe_iterations: 0,
            current_probe_iterations: 0,
        }
    }

    /// Largest number of probe iterations observed at a single node.
    pub fn max_probe_iterations(&self) -> u32 {
        self.max_probe_iterations
    }

    /// The single write point for `tags`, keeping the per-class counts
    /// behind [`AgentProtocol::max_memory_bits`] exact.
    #[inline]
    fn set_tag(&mut self, i: usize, t: u8) {
        self.class_counts[class(self.tags[i])] -= 1;
        self.class_counts[class(t)] += 1;
        self.tags[i] = t;
    }

    #[inline]
    fn settler_here(&self, ctx: &ActivationCtx<'_>) -> Option<AgentId> {
        match self.settled_at[ctx.node().index()] {
            NO_SETTLER => None,
            a => Some(AgentId(a)),
        }
    }

    /// Settle `agent` and park it: settlers in this protocol are never
    /// recruited, so their activations are no-ops forever.
    fn settle(&mut self, ctx: &mut ActivationCtx<'_>, agent: AgentId, parent_port: Option<Port>) {
        self.set_tag(agent.index(), tag::SETTLED);
        self.p0[agent.index()] = enc(parent_port);
        self.settled_at[ctx.node().index()] = agent.0;
        self.settled_count += 1;
        ctx.park(agent);
    }

    /// The co-located follower with the smallest id, if any.
    fn min_follower_here(&self, ctx: &ActivationCtx<'_>) -> Option<AgentId> {
        ctx.colocated_iter()
            .filter(|a| self.tags[a.index()] <= tag::FOLLOWER_T)
            .min_by_key(|a| a.0)
    }

    #[allow(clippy::too_many_lines)]
    fn act_leader(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        match self.tags[a] {
            tag::LEAD_DECIDE => {
                if self.settler_here(ctx).is_none() {
                    let arrival_pin = opt(self.arrival_pin);
                    if self.group_size == 0 {
                        self.settle(ctx, agent, arrival_pin);
                        return;
                    }
                    let chosen = self.min_follower_here(ctx).expect("group is co-located");
                    self.settle(ctx, chosen, arrival_pin);
                    self.group_size -= 1;
                } else {
                    self.checked = 0;
                    self.next_empty = NO_PORT;
                    self.current_probe_iterations = 0;
                    self.set_tag(a, tag::LEAD_PROBE_ASSIGN);
                }
            }

            tag::LEAD_PROBE_ASSIGN => {
                if self.next_empty != NO_PORT || self.checked as usize >= ctx.degree() {
                    self.movement_phase(ctx, agent);
                } else {
                    self.current_probe_iterations += 1;
                    self.max_probe_iterations =
                        self.max_probe_iterations.max(self.current_probe_iterations);
                    let mut pool = std::mem::take(&mut self.scratch);
                    pool.clear();
                    pool.extend(
                        ctx.colocated_iter()
                            .filter(|h| self.tags[h.index()] <= tag::FOLLOWER_T),
                    );
                    pool.sort_unstable_by_key(|h| h.0);
                    if let Some(cap) = self.config.max_probers {
                        pool.truncate(cap.max(1));
                    }
                    if pool.is_empty() {
                        // Leader probes the next port itself.
                        let port = Port(self.checked + 1);
                        self.solo_pin = ctx.move_via(port);
                        self.set_tag(a, tag::LEAD_SOLO_OUT);
                    } else {
                        let want = (ctx.degree() - self.checked as usize).min(pool.len());
                        for (i, seeker) in pool.iter().take(want).enumerate() {
                            let s = seeker.index();
                            self.set_tag(s, tag::SEEK_OUT);
                            self.p0[s] = Port(self.checked + 1 + i as u32);
                            self.p1[s] = NO_PORT;
                        }
                        self.checked += want as u32;
                        self.assigned = want as u32;
                        self.set_tag(a, tag::LEAD_PROBE_WAIT);
                    }
                    pool.clear();
                    self.scratch = pool;
                }
            }

            tag::LEAD_PROBE_WAIT => {
                let mut returned = std::mem::take(&mut self.scratch);
                returned.clear();
                returned.extend(
                    ctx.colocated_iter().filter(|s| {
                        matches!(self.tags[s.index()], tag::SEEK_RET_F | tag::SEEK_RET_T)
                    }),
                );
                if returned.len() as u32 == self.assigned {
                    let flip = self.order_port != NO_PORT && self.order_flip;
                    for &s in &returned {
                        let si = s.index();
                        let port = self.p0[si];
                        if self.tags[si] == tag::SEEK_RET_F {
                            self.next_empty = match opt(self.next_empty) {
                                Some(q) if q < port => q,
                                _ => port,
                            };
                        }
                        self.set_tag(
                            si,
                            if flip {
                                tag::FOLLOWER_T
                            } else {
                                tag::FOLLOWER_F
                            },
                        );
                    }
                    self.set_tag(a, tag::LEAD_PROBE_ASSIGN);
                }
                returned.clear();
                self.scratch = returned;
            }

            tag::LEAD_SOLO_OUT => {
                let saw = self.settler_here(ctx).is_some();
                self.solo_left = self.config.wait_rounds;
                self.set_tag(
                    a,
                    if saw {
                        tag::LEAD_SOLO_WAIT_T
                    } else {
                        tag::LEAD_SOLO_WAIT_F
                    },
                );
            }

            t @ (tag::LEAD_SOLO_WAIT_F | tag::LEAD_SOLO_WAIT_T) => {
                let saw = t == tag::LEAD_SOLO_WAIT_T || self.settler_here(ctx).is_some();
                if self.solo_left == 0 {
                    ctx.move_via(opt(self.solo_pin).expect("solo pin recorded"));
                    self.set_tag(
                        a,
                        if saw {
                            tag::LEAD_SOLO_RET_T
                        } else {
                            tag::LEAD_SOLO_RET_F
                        },
                    );
                } else {
                    self.solo_left -= 1;
                    self.set_tag(
                        a,
                        if saw {
                            tag::LEAD_SOLO_WAIT_T
                        } else {
                            tag::LEAD_SOLO_WAIT_F
                        },
                    );
                }
            }

            t @ (tag::LEAD_SOLO_RET_F | tag::LEAD_SOLO_RET_T) => {
                if t == tag::LEAD_SOLO_RET_F {
                    self.next_empty = Port(self.checked + 1);
                }
                self.checked += 1;
                self.solo_pin = NO_PORT;
                self.set_tag(a, tag::LEAD_PROBE_ASSIGN);
            }

            t @ (tag::LEAD_DEPART_FORWARD | tag::LEAD_DEPART_BACKTRACK) => {
                debug_assert_ne!(self.order_port, NO_PORT, "departing without an order");
                if self.min_follower_here(ctx).is_none() {
                    let pin = ctx.move_via(self.order_port);
                    self.arrival_pin = pin;
                    self.set_tag(
                        a,
                        if t == tag::LEAD_DEPART_FORWARD {
                            tag::LEAD_ARRIVE_FORWARD
                        } else {
                            tag::LEAD_DECIDE
                        },
                    );
                }
            }

            tag::LEAD_ARRIVE_FORWARD => {
                debug_assert!(self.settler_here(ctx).is_none());
                let arrival_pin = opt(self.arrival_pin);
                if self.group_size == 0 {
                    self.settle(ctx, agent, arrival_pin);
                    return;
                }
                let chosen = self.min_follower_here(ctx).expect("group is co-located");
                self.settle(ctx, chosen, arrival_pin);
                self.group_size -= 1;
                self.set_tag(a, tag::LEAD_DECIDE);
            }

            t => unreachable!("act_leader on non-leader tag {t}"),
        }
    }

    /// Issue the next group movement order (forward to the discovered empty
    /// neighbor or backtrack to the parent), flipping the order bit.
    fn movement_phase(&mut self, ctx: &ActivationCtx<'_>, leader: AgentId) {
        let flip = self.order_port == NO_PORT || !self.order_flip;
        let (p, depart) = match opt(self.next_empty) {
            Some(p) => (p, tag::LEAD_DEPART_FORWARD),
            None => {
                let settler = self
                    .settler_here(ctx)
                    .expect("backtracking from a settled node");
                let p = opt(self.p0[settler.index()])
                    .expect("the DFS root can only be exhausted after everyone settled");
                (p, tag::LEAD_DEPART_BACKTRACK)
            }
        };
        self.order_port = p;
        self.order_flip = flip;
        self.set_tag(leader.index(), depart);
    }

    fn act_follower(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        let executed = self.tags[a] == tag::FOLLOWER_T;
        if ctx.colocated_iter().any(|peer| peer == self.leader)
            && self.tags[self.leader.index()] >= tag::LEAD_DECIDE
            && self.order_port != NO_PORT
            && self.order_flip != executed
        {
            ctx.move_via(self.order_port);
            self.set_tag(
                a,
                if self.order_flip {
                    tag::FOLLOWER_T
                } else {
                    tag::FOLLOWER_F
                },
            );
        }
    }

    fn act_seeker(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        match self.tags[a] {
            tag::SEEK_OUT => {
                self.p1[a] = ctx.move_via(self.p0[a]);
                self.aux0[a] = self.config.wait_rounds;
                self.set_tag(a, tag::SEEK_WAIT_F);
            }
            t @ (tag::SEEK_WAIT_F | tag::SEEK_WAIT_T) => {
                let saw = t == tag::SEEK_WAIT_T || self.settler_here(ctx).is_some();
                if self.aux0[a] == 0 {
                    ctx.move_via(opt(self.p1[a]).expect("pin recorded"));
                    self.set_tag(
                        a,
                        if saw {
                            tag::SEEK_RET_T
                        } else {
                            tag::SEEK_RET_F
                        },
                    );
                } else {
                    self.aux0[a] -= 1;
                    self.set_tag(
                        a,
                        if saw {
                            tag::SEEK_WAIT_T
                        } else {
                            tag::SEEK_WAIT_F
                        },
                    );
                }
            }
            tag::SEEK_RET_F | tag::SEEK_RET_T => {}
            t => unreachable!("act_seeker on non-seeker tag {t}"),
        }
    }
}

impl AgentProtocol for RootedSyncDisp {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        match self.tags[agent.index()] {
            tag::FOLLOWER_F | tag::FOLLOWER_T => self.act_follower(agent, ctx),
            tag::SETTLED => {}
            tag::SEEK_OUT..=tag::SEEK_RET_T => self.act_seeker(agent, ctx),
            _ => self.act_leader(agent, ctx),
        }
    }

    fn is_terminated(&self) -> bool {
        self.settled_count == self.k
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        self.tags[agent.index()] == tag::SETTLED
    }

    fn memory_bits(&self, agent: AgentId) -> usize {
        self.class_bits[class(self.tags[agent.index()])]
    }

    fn max_memory_bits(&self) -> Option<usize> {
        Some(
            (0..CLASSES)
                .filter(|&c| self.class_counts[c] > 0)
                .map(|c| self.class_bits[c])
                .max()
                .unwrap_or(0),
        )
    }

    fn class_counts(&self, out: &mut Vec<(&'static str, u32)>) {
        for (name, &count) in CLASS_NAMES.iter().zip(&self.class_counts) {
            out.push((name, count));
        }
    }

    fn name(&self) -> &'static str {
        "rooted-sync-seeker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_dispersion, envelope};
    use disp_graph::{generators, NodeId};
    use disp_sim::{Outcome, RunConfig, SyncRunner};

    fn run(world: &mut World, config: SyncConfig) -> (Outcome, RootedSyncDisp) {
        let mut proto = RootedSyncDisp::with_config(world, config);
        let out = SyncRunner::new(RunConfig::default())
            .run(world, &mut proto)
            .expect("must terminate");
        check_dispersion(world).expect("must disperse");
        (out, proto)
    }

    #[test]
    fn line_is_linear_time() {
        let g = generators::line(64);
        let mut world = World::new_rooted(g, 64, NodeId(0));
        let (out, _) = run(&mut world, SyncConfig::default());
        assert!(out.terminated);
        assert!(
            envelope::within_linear(&out, 20.0),
            "rounds {} not O(k) on the line",
            out.rounds
        );
    }

    #[test]
    fn ring_and_grid_disperse() {
        let g = generators::ring(30);
        let mut world = World::new_rooted(g, 30, NodeId(3));
        run(&mut world, SyncConfig::default());
        let g = generators::grid2d(6, 6);
        let mut world = World::new_rooted(g, 36, NodeId(0));
        run(&mut world, SyncConfig::default());
    }

    #[test]
    fn random_trees_and_graphs() {
        for seed in 0..4 {
            let g = generators::random_tree(40, seed);
            let mut world = World::new_rooted(g, 40, NodeId(0));
            run(&mut world, SyncConfig::default());
        }
        for seed in 0..3 {
            let g = generators::erdos_renyi_connected(35, 0.12, seed);
            let mut world = World::new_rooted(g, 35, NodeId(2));
            run(&mut world, SyncConfig::default());
        }
    }

    #[test]
    fn star_probes_in_few_iterations_with_a_large_pool() {
        // With an uncapped pool, probing the hub takes O(1) iterations while
        // more than ~Δ unsettled agents remain.
        let g = generators::star(48);
        let mut world = World::new_rooted(g, 48, NodeId(0));
        let (out, proto) = run(&mut world, SyncConfig::default());
        assert!(out.terminated);
        assert!(proto.max_probe_iterations() <= 48);
    }

    #[test]
    fn seeker_cap_ablation_increases_iterations() {
        let g = generators::star(30);
        let mut w1 = World::new_rooted(g.clone(), 30, NodeId(0));
        let (_, uncapped) = run(&mut w1, SyncConfig::default());
        let mut w2 = World::new_rooted(g, 30, NodeId(0));
        let (_, capped) = run(
            &mut w2,
            SyncConfig {
                wait_rounds: 1,
                max_probers: Some(3),
            },
        );
        assert!(
            capped.max_probe_iterations() >= uncapped.max_probe_iterations(),
            "capping the pool cannot reduce probe iterations"
        );
    }

    #[test]
    fn wait_rounds_ablation_costs_time_but_preserves_correctness() {
        let g = generators::random_tree(30, 7);
        let mut w1 = World::new_rooted(g.clone(), 30, NodeId(0));
        let (fast, _) = run(
            &mut w1,
            SyncConfig {
                wait_rounds: 1,
                max_probers: None,
            },
        );
        let mut w2 = World::new_rooted(g, 30, NodeId(0));
        let (slow, _) = run(
            &mut w2,
            SyncConfig {
                wait_rounds: 6,
                max_probers: None,
            },
        );
        assert!(slow.rounds > fast.rounds);
    }

    #[test]
    fn k_smaller_than_n() {
        let g = generators::erdos_renyi_connected(50, 0.08, 5);
        let mut world = World::new_rooted(g, 20, NodeId(0));
        run(&mut world, SyncConfig::default());
    }

    #[test]
    fn tiny_k() {
        for k in 1..=3 {
            let g = generators::ring(5);
            let mut world = World::new_rooted(g, k, NodeId(1));
            let (out, _) = run(&mut world, SyncConfig::default());
            assert!(out.terminated);
        }
    }

    #[test]
    fn memory_is_logarithmic() {
        let g = generators::complete(40);
        let mut world = World::new_rooted(g, 40, NodeId(0));
        let (out, _) = run(&mut world, SyncConfig::default());
        assert!(envelope::memory_logarithmic(&out, 30.0));
    }

    #[test]
    fn faster_than_probe_dfs_on_dense_graphs() {
        // The seeker pool checks many ports per O(1) rounds without the
        // recruit-and-see-off overhead, so on dense graphs it beats the
        // doubling-probe protocol run synchronously.
        let k = 36;
        let g = generators::complete(k);
        let mut w1 = World::new_rooted(g.clone(), k, NodeId(0));
        let (seeker_out, _) = run(&mut w1, SyncConfig::default());
        let mut w2 = World::new_rooted(g, k, NodeId(0));
        let mut probe = crate::ProbeDfs::new(&w2);
        let probe_out = SyncRunner::new(RunConfig::default())
            .run(&mut w2, &mut probe)
            .unwrap();
        assert!(
            seeker_out.rounds < probe_out.rounds,
            "seeker probing ({}) should beat doubling probing ({}) on K_{k}",
            seeker_out.rounds,
            probe_out.rounds
        );
    }
}
