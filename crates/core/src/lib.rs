//! # disp-core
//!
//! Dispersion algorithms from *"Dispersion is (Almost) Optimal under
//! (A)synchrony"* (SPAA 2025), together with the state-of-the-art baselines
//! the paper compares against, running on the [`disp_sim`] agent engine over
//! [`disp_graph`] port-labeled graphs.
//!
//! | Item | Module | Paper reference |
//! |---|---|---|
//! | Group-DFS baseline, `O(min{m,kΔ})` | [`baselines::ks_dfs`] | Kshemkalyani–Sharma, OPODIS'21 |
//! | Doubling-probe DFS (`Async_Probe` + `Guest_See_Off`) | [`probe_dfs`] | Algorithms 3, 4, 8 (Theorem 7.1); under SYNC it reproduces the Sudo et al. DISC'24 baseline |
//! | Empty-node selection | [`empty_node`] | Algorithm 1, Lemma 1 |
//! | Oscillation groups | [`oscillation`] | Lemmas 2–3 |
//! | Seeker-based synchronous probing & the `O(k)` SYNC algorithm | [`rooted_sync`] | Algorithms 2, 5–7 (Theorem 6.1) |
//! | Verification | [`verify`] | dispersion configuration & complexity envelopes |
//! | The scenario API | [`scenario`] | one open, canonical run description for every algorithm/placement/schedule |
//! | Extra registry algorithms | [`extras`] | registry-extension proof (toy random walk) |
//!
//! Runs are described by [`scenario::ScenarioSpec`] — graph family ×
//! placement × schedule × algorithm (from an open
//! [`scenario::Registry`]) × typed params × limits — which round-trips
//! through a canonical label string. See `DESIGN.md` §7.
//!
//! ```
//! use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
//! use disp_graph::generators::GraphFamily;
//! use disp_sim::Placement;
//!
//! let spec = ScenarioSpec::new(GraphFamily::RandomTree, 32, "ks-dfs")
//!     .with_placement(Placement::ScatteredUniform)
//!     .with_schedule(Schedule::AsyncRandom { prob: 0.7, seed: 0 });
//! assert_eq!(spec.label(), "rtree/k32/scatter/async-rand0.7/ks-dfs");
//! let report = spec.run(&Registry::builtin(), 42).unwrap();
//! assert!(report.dispersed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod empty_node;
pub mod extras;
pub mod oscillation;
pub mod probe_dfs;
pub mod rooted_sync;
pub mod scenario;
pub mod verify;

pub use baselines::ks_dfs::KsDfs;
pub use probe_dfs::ProbeDfs;
pub use rooted_sync::RootedSyncDisp;
pub use scenario::{
    AlgorithmFactory, Limits, ParamValue, Params, Registry, ScenarioError, ScenarioReport,
    ScenarioSpec, Schedule,
};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::baselines::ks_dfs::KsDfs;
    pub use crate::probe_dfs::ProbeDfs;
    pub use crate::rooted_sync::RootedSyncDisp;
    pub use crate::scenario::{
        run_custom, AlgorithmFactory, Limits, ParamValue, Params, Registry, ScenarioError,
        ScenarioReport, ScenarioSpec, Schedule,
    };
    pub use crate::verify::{check_dispersion, check_dispersion_at, is_dispersed, is_dispersed_at};
}
