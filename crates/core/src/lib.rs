//! # disp-core
//!
//! Dispersion algorithms from *"Dispersion is (Almost) Optimal under
//! (A)synchrony"* (SPAA 2025), together with the state-of-the-art baselines
//! the paper compares against, running on the [`disp_sim`] agent engine over
//! [`disp_graph`] port-labeled graphs.
//!
//! | Item | Module | Paper reference |
//! |---|---|---|
//! | Group-DFS baseline, `O(min{m,kΔ})` | [`baselines::ks_dfs`] | Kshemkalyani–Sharma, OPODIS'21 |
//! | Doubling-probe DFS (`Async_Probe` + `Guest_See_Off`) | [`probe_dfs`] | Algorithms 3, 4, 8 (Theorem 7.1); under SYNC it reproduces the Sudo et al. DISC'24 baseline |
//! | Empty-node selection | [`empty_node`] | Algorithm 1, Lemma 1 |
//! | Oscillation groups | [`oscillation`] | Lemmas 2–3 |
//! | Seeker-based synchronous probing & the `O(k)` SYNC algorithm | [`rooted_sync`] | Algorithms 2, 5–7 (Theorem 6.1) |
//! | Verification | [`verify`] | dispersion configuration & complexity envelopes |
//! | Uniform runner | [`runner`] | one entry point for every algorithm/scheduler pair |
//!
//! See `DESIGN.md` at the workspace root for the fidelity notes: what is
//! reproduced exactly, what is simulated, and where the implementation
//! deviates from the paper (most notably the general-initial-configuration
//! subsumption machinery, which is replaced by a simpler, correct fallback).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod empty_node;
pub mod oscillation;
pub mod probe_dfs;
pub mod rooted_sync;
pub mod runner;
pub mod verify;

pub use baselines::ks_dfs::KsDfs;
pub use probe_dfs::ProbeDfs;
pub use rooted_sync::RootedSyncDisp;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::baselines::ks_dfs::KsDfs;
    pub use crate::probe_dfs::ProbeDfs;
    pub use crate::rooted_sync::RootedSyncDisp;
    pub use crate::runner::{run, run_rooted, Algorithm, RunReport, RunSpec, Schedule};
    pub use crate::verify::{check_dispersion, is_dispersed};
}
