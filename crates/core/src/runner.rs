//! A uniform entry point for running any algorithm under any scheduler —
//! used by the examples, the experiment harness and the benches.

use crate::baselines::ks_dfs::KsDfs;
use crate::probe_dfs::ProbeDfs;
use crate::rooted_sync::{RootedSyncDisp, SyncConfig};
use crate::verify;
use disp_graph::{NodeId, PortGraph};
use disp_sim::{
    AdversaryKind, AgentProtocol, AsyncRunner, Outcome, RunConfig, RunError, SyncRunner, World,
};

/// Which dispersion algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Group DFS with port scanning — the `O(min{m, kΔ})` baseline
    /// (Kshemkalyani–Sharma, OPODIS'21). Supports general configurations.
    KsDfs,
    /// Doubling-probe DFS (`Async_Probe` + `Guest_See_Off`) — the paper's
    /// `RootedAsyncDisp` (Theorem 7.1); under SYNC it is the DISC'24-style
    /// baseline. Rooted configurations.
    ProbeDfs,
    /// Seeker-pool synchronous probing (`Sync_Probe`, Algorithms 2/5–7).
    /// Rooted configurations, SYNC scheduler.
    SyncSeeker,
}

impl Algorithm {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::KsDfs => "ks-dfs",
            Algorithm::ProbeDfs => "probe-dfs",
            Algorithm::SyncSeeker => "sync-seeker",
        }
    }

    /// Whether the algorithm accepts non-rooted (general) starts.
    pub fn supports_general(&self) -> bool {
        matches!(self, Algorithm::KsDfs)
    }

    /// Every algorithm, in report order.
    pub fn all() -> [Algorithm; 3] {
        [Algorithm::KsDfs, Algorithm::ProbeDfs, Algorithm::SyncSeeker]
    }

    /// Inverse of [`Algorithm::label`] (used by CLI parsing and record
    /// ingestion).
    pub fn from_label(label: &str) -> Option<Algorithm> {
        Algorithm::all().into_iter().find(|a| a.label() == label)
    }
}

/// Which scheduler to run under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Synchronous rounds.
    Sync,
    /// Asynchronous, round-robin activations (benign schedule).
    AsyncRoundRobin,
    /// Asynchronous, independent random activations with the given per-step
    /// probability.
    AsyncRandom {
        /// Per-agent activation probability per step.
        prob: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Asynchronous with heterogeneous lags up to `max_lag`.
    AsyncLagging {
        /// Largest per-agent activation period.
        max_lag: u64,
        /// RNG seed.
        seed: u64,
    },
}

impl Schedule {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Schedule::Sync => "sync".into(),
            Schedule::AsyncRoundRobin => "async-rr".into(),
            Schedule::AsyncRandom { prob, .. } => format!("async-rand{prob}"),
            Schedule::AsyncLagging { max_lag, .. } => format!("async-lag{max_lag}"),
        }
    }

    /// The same schedule with its adversary seed replaced by `seed`.
    ///
    /// The campaign engine stores one schedule per experiment point and
    /// derives a fresh seed per trial; deterministic schedules (SYNC,
    /// round-robin) are returned unchanged.
    pub fn reseeded(self, seed: u64) -> Schedule {
        match self {
            Schedule::Sync => Schedule::Sync,
            Schedule::AsyncRoundRobin => Schedule::AsyncRoundRobin,
            Schedule::AsyncRandom { prob, .. } => Schedule::AsyncRandom { prob, seed },
            Schedule::AsyncLagging { max_lag, .. } => Schedule::AsyncLagging { max_lag, seed },
        }
    }

    /// The adversary this schedule runs under, as a seedable descriptor plus
    /// the stored seed — `None` for the synchronous scheduler.
    pub fn adversary(&self) -> Option<(AdversaryKind, u64)> {
        match *self {
            Schedule::Sync => None,
            Schedule::AsyncRoundRobin => Some((AdversaryKind::RoundRobin, 0)),
            Schedule::AsyncRandom { prob, seed } => {
                Some((AdversaryKind::RandomSubset { prob }, seed))
            }
            Schedule::AsyncLagging { max_lag, seed } => {
                Some((AdversaryKind::Lagging { max_lag }, seed))
            }
        }
    }
}

/// A complete run specification.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Scheduler to run under.
    pub schedule: Schedule,
    /// Runner limits.
    pub limits: RunConfig,
    /// Tuning for the SyncSeeker algorithm (ignored by the others).
    pub sync_config: SyncConfig,
    /// Seed for algorithm-internal randomness (scatter fallback).
    pub seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            algorithm: Algorithm::ProbeDfs,
            schedule: Schedule::Sync,
            limits: RunConfig::default(),
            sync_config: SyncConfig::default(),
            seed: 1,
        }
    }
}

/// The result of [`run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Algorithm label.
    pub algorithm: String,
    /// Schedule label.
    pub schedule: String,
    /// Graph label.
    pub graph: String,
    /// Raw measurements.
    pub outcome: Outcome,
    /// Whether the final configuration is a valid dispersion.
    pub dispersed: bool,
}

fn drive(
    spec: &RunSpec,
    world: &mut World,
    protocol: &mut dyn AgentProtocol,
) -> Result<Outcome, RunError> {
    match spec.schedule.adversary() {
        None => SyncRunner::new(spec.limits.clone()).run(world, protocol),
        Some((kind, seed)) => {
            AsyncRunner::new(spec.limits.clone(), kind.build(seed)).run(world, protocol)
        }
    }
}

/// Run `spec` on `graph` with the given initial positions and report the
/// outcome together with a dispersion check of the final configuration.
pub fn run(
    graph: &PortGraph,
    positions: Vec<NodeId>,
    spec: &RunSpec,
) -> Result<RunReport, RunError> {
    let mut world = World::new(graph.clone(), positions);
    let outcome = match spec.algorithm {
        Algorithm::KsDfs => {
            let mut proto = KsDfs::with_seed(&world, spec.seed);
            drive(spec, &mut world, &mut proto)?
        }
        Algorithm::ProbeDfs => {
            let mut proto = ProbeDfs::new(&world);
            drive(spec, &mut world, &mut proto)?
        }
        Algorithm::SyncSeeker => {
            let mut proto = RootedSyncDisp::with_config(&world, spec.sync_config);
            drive(spec, &mut world, &mut proto)?
        }
    };
    Ok(RunReport {
        algorithm: spec.algorithm.label().to_string(),
        schedule: spec.schedule.label(),
        graph: graph.name().to_string(),
        dispersed: verify::is_dispersed(&world),
        outcome,
    })
}

/// Convenience wrapper for rooted starts: all `k` agents begin on `root`.
pub fn run_rooted(
    graph: &PortGraph,
    k: usize,
    root: NodeId,
    spec: &RunSpec,
) -> Result<RunReport, RunError> {
    run(graph, vec![root; k], spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_graph::generators;

    #[test]
    fn every_algorithm_runs_through_the_uniform_entry_point() {
        let g = generators::random_tree(20, 1);
        for algo in [Algorithm::KsDfs, Algorithm::ProbeDfs, Algorithm::SyncSeeker] {
            let spec = RunSpec {
                algorithm: algo,
                ..RunSpec::default()
            };
            let report = run_rooted(&g, 20, NodeId(0), &spec).unwrap();
            assert!(report.dispersed, "{algo:?} must disperse");
            assert!(report.outcome.terminated);
            assert_eq!(report.algorithm, algo.label());
        }
    }

    #[test]
    fn async_schedules_work_for_async_capable_algorithms() {
        let g = generators::erdos_renyi_connected(24, 0.15, 2);
        for schedule in [
            Schedule::AsyncRoundRobin,
            Schedule::AsyncRandom { prob: 0.5, seed: 3 },
            Schedule::AsyncLagging {
                max_lag: 4,
                seed: 7,
            },
        ] {
            for algo in [Algorithm::KsDfs, Algorithm::ProbeDfs] {
                let spec = RunSpec {
                    algorithm: algo,
                    schedule,
                    ..RunSpec::default()
                };
                let report = run_rooted(&g, 24, NodeId(0), &spec).unwrap();
                assert!(report.dispersed, "{algo:?} under {schedule:?}");
            }
        }
    }

    #[test]
    fn general_configuration_through_ks_dfs() {
        let g = generators::grid2d(5, 5);
        let positions: Vec<NodeId> = (0..15).map(|i| NodeId((i % 25) as u32)).collect();
        let spec = RunSpec {
            algorithm: Algorithm::KsDfs,
            ..RunSpec::default()
        };
        let report = run(&g, positions, &spec).unwrap();
        assert!(report.dispersed);
        assert!(Algorithm::KsDfs.supports_general());
        assert!(!Algorithm::ProbeDfs.supports_general());
    }

    #[test]
    fn reseeded_replaces_only_adversary_seeds() {
        assert_eq!(Schedule::Sync.reseeded(9), Schedule::Sync);
        assert_eq!(
            Schedule::AsyncRoundRobin.reseeded(9),
            Schedule::AsyncRoundRobin
        );
        assert_eq!(
            Schedule::AsyncRandom { prob: 0.5, seed: 1 }.reseeded(9),
            Schedule::AsyncRandom { prob: 0.5, seed: 9 }
        );
        assert_eq!(
            Schedule::AsyncLagging {
                max_lag: 4,
                seed: 1
            }
            .reseeded(9),
            Schedule::AsyncLagging {
                max_lag: 4,
                seed: 9
            }
        );
    }

    #[test]
    fn algorithm_labels_round_trip() {
        for algo in Algorithm::all() {
            assert_eq!(Algorithm::from_label(algo.label()), Some(algo));
        }
        assert_eq!(Algorithm::from_label("nope"), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Algorithm::ProbeDfs.label(), "probe-dfs");
        assert_eq!(Schedule::Sync.label(), "sync");
        assert_eq!(
            Schedule::AsyncLagging {
                max_lag: 9,
                seed: 0
            }
            .label(),
            "async-lag9"
        );
    }
}
