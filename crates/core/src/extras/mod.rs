//! Extra algorithms that are not part of the paper's evaluation.
//!
//! These ship outside [`crate::scenario::Registry::builtin`] deliberately:
//! they exist to prove (and keep proving, in tests) that plugging a new
//! algorithm into every campaign, bench and CLI takes one module plus one
//! `Registry::with` call — nothing in the run path is a closed enum.

pub mod random_walk;

pub use random_walk::{RandomWalk, RandomWalkFactory};
