//! Extra algorithms that are not part of the paper's evaluation.
//!
//! [`random_walk`] began life here as the registry-openness proof and has
//! since been promoted into [`crate::scenario::Registry::builtin`] — the
//! fault-worlds campaigns need a crash-tolerant algorithm on every entry
//! point. [`spacer`] takes over the openness role: it ships outside the
//! builtin set deliberately, to prove (and keep proving, in tests) that
//! plugging a new algorithm into every campaign, bench and CLI takes one
//! module plus one `Registry::with` call — nothing in the run path is a
//! closed enum. It doubles as the positive oracle for the distance-`k`
//! dispersion verifier.

pub mod random_walk;
pub mod spacer;

pub use random_walk::{RandomWalk, RandomWalkFactory};
pub use spacer::{Spacer, SpacerFactory};
