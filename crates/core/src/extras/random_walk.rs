//! A toy randomized dispersion algorithm: every unsettled agent performs an
//! independent seeded random walk and settles at the first node with no
//! settled agent on it.
//!
//! Correct on any connected graph, from any start, under any fair schedule
//! (settled nodes stay settled, `k ≤ n` keeps a free node available, and a
//! random walk on a connected graph visits every node with probability 1).
//! Time is expected cover-time-ish — far off the paper's bounds — which is
//! exactly why it is a useful registry guinea pig rather than a baseline.
//!
//! It is also the workspace's **fault-tolerant** algorithm: walks carry no
//! shared structure, so a crashed agent costs nothing beyond retracting its
//! settlement claim ([`AgentProtocol::on_crash`]) and a downed edge merely
//! delays one hop ([`ActivationCtx::try_move_via`] + wait). The registry
//! therefore declares both `supports_crash` and `supports_dynamic`.

use crate::scenario::{AlgorithmFactory, Params};
use disp_graph::Port;
use disp_rng::mix;
use disp_sim::{bits, ActivationCtx, AgentId, AgentProtocol, MoveError, World};

/// The random-walk protocol. See the module docs.
#[derive(Debug)]
pub struct RandomWalk {
    settled: Vec<bool>,
    dead: Vec<bool>,
    /// Per-agent xorshift64* state (never zero).
    rng: Vec<u64>,
    settled_count: usize,
    dead_count: usize,
}

impl RandomWalk {
    /// Build the protocol; each agent's walk derives from `seed` and its id.
    pub fn new(world: &World, seed: u64) -> Self {
        let k = world.num_agents();
        RandomWalk {
            settled: vec![false; k],
            dead: vec![false; k],
            rng: (0..k as u64).map(|i| mix(&[seed, i]) | 1).collect(),
            settled_count: 0,
            dead_count: 0,
        }
    }

    fn next_u64(&mut self, agent: AgentId) -> u64 {
        let s = &mut self.rng[agent.index()];
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }
}

impl AgentProtocol for RandomWalk {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        if self.settled[agent.index()] {
            return;
        }
        // Activations are sequential, so "no settled agent here" is a
        // race-free claim on this node.
        if !ctx.colocated_iter().any(|a| self.settled[a.index()]) {
            self.settled[agent.index()] = true;
            self.settled_count += 1;
            ctx.park(agent);
            return;
        }
        let degree = ctx.degree() as u64;
        let port = 1 + self.next_u64(agent) % degree;
        // A downed edge (dynamic adversary) is a one-round delay, not an
        // error: stay put and draw a fresh port next activation.
        match ctx.try_move_via(Port(port as u32)) {
            Ok(_) | Err(MoveError::EdgeDown { .. }) => {}
            Err(e) => panic!("agent {agent} illegal walk move: {e}"),
        }
    }

    fn on_crash(&mut self, agent: AgentId) {
        // Retract the corpse's settlement claim so a survivor can re-settle
        // the orphaned node; termination then needs survivors only.
        if self.settled[agent.index()] {
            self.settled[agent.index()] = false;
            self.settled_count -= 1;
        }
        self.dead[agent.index()] = true;
        self.dead_count += 1;
    }

    fn is_terminated(&self) -> bool {
        self.settled_count == self.settled.len() - self.dead_count
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        self.settled[agent.index()]
    }

    fn memory_bits(&self, _agent: AgentId) -> usize {
        // One settled flag plus the walk's 64-bit RNG state.
        bits::flag_bits() + 64
    }

    fn name(&self) -> &'static str {
        "random-walk"
    }
}

/// Registry factory for [`RandomWalk`] — general starts, any schedule,
/// both fault models.
pub struct RandomWalkFactory;

impl AlgorithmFactory for RandomWalkFactory {
    fn label(&self) -> &'static str {
        "random-walk"
    }

    fn supports_general(&self) -> bool {
        true
    }

    fn supports_dynamic(&self) -> bool {
        true
    }

    fn supports_crash(&self) -> bool {
        true
    }

    fn build(&self, world: &World, _params: &Params, seed: u64) -> Box<dyn AgentProtocol> {
        Box::new(RandomWalk::new(world, seed))
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{Registry, ScenarioSpec, Schedule};
    use disp_graph::generators::GraphFamily;
    use disp_sim::Placement;

    // `random-walk` is a builtin since the fault-worlds campaigns need a
    // crash-tolerant algorithm on every entry point.
    fn registry() -> Registry {
        Registry::builtin()
    }

    #[test]
    fn random_walk_disperses_from_every_placement_under_every_schedule() {
        let reg = registry();
        for placement in Placement::all() {
            for schedule in [Schedule::Sync, Schedule::AsyncRandom { prob: 0.7, seed: 0 }] {
                let spec = ScenarioSpec::new(GraphFamily::RandomTree, 12, "random-walk")
                    .with_placement(placement)
                    .with_schedule(schedule);
                let report = spec.run(&reg, 5).unwrap();
                assert!(report.dispersed, "{}", spec.label());
                assert!(report.outcome.terminated);
            }
        }
    }

    #[test]
    fn random_walk_is_seed_deterministic() {
        let reg = registry();
        let spec = ScenarioSpec::new(GraphFamily::Grid, 10, "random-walk")
            .with_placement(Placement::ScatteredUniform);
        let a = spec.run(&reg, 99).unwrap();
        let b = spec.run(&reg, 99).unwrap();
        assert_eq!(a.outcome, b.outcome);
    }
}
