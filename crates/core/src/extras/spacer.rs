//! `spacer` — a deliberately simple distance-`gap` dispersion algorithm for
//! **rooted rings**: agent `i` walks exactly `gap · i` hops in a fixed
//! direction and settles, producing a configuration whose pairwise settled
//! distance is exactly `gap` (when `k · gap ≤ n`).
//!
//! It exists for two reasons. First, it keeps proving the registry is open
//! (one module + one `Registry::with` call) now that `random-walk` has been
//! promoted into the builtin set. Second, it is the positive oracle for the
//! distance-`k` verifier: `spacer/gap=d` **must** pass `distd` and **must**
//! fail `dist(d+1)`, which pins the verifier's BFS from both sides.
//!
//! Moves go through the fallible path, so the dynamic-ring adversary merely
//! delays a hop (`supports_dynamic`).

use crate::scenario::{AlgorithmFactory, ParamValue, Params};
use disp_graph::Port;
use disp_sim::{bits, ActivationCtx, AgentId, AgentProtocol, MoveError, World};

/// The ring-spacing protocol. See the module docs.
#[derive(Debug)]
pub struct Spacer {
    /// Hops left before this agent settles.
    steps_left: Vec<u64>,
    /// Arrival port of the last hop (`None` before the first hop); the next
    /// exit is the *other* port, which keeps the walk direction fixed.
    last_pin: Vec<Option<Port>>,
    settled: Vec<bool>,
    settled_count: usize,
    gap: u64,
}

impl Spacer {
    /// Build the protocol for a rooted world on a ring.
    ///
    /// # Panics
    /// Panics when the world is not a rooted start on a ring (every node
    /// degree 2, `m = n`), when `gap == 0`, or when `k · gap > n` — the
    /// configurations where exact `gap`-spacing is impossible.
    pub fn new(world: &World, gap: u64) -> Self {
        let k = world.num_agents();
        let root = world.position(AgentId(0));
        assert!(
            (0..k).all(|i| world.position(AgentId(i as u32)) == root),
            "spacer handles rooted starts only"
        );
        let n = world.graph().num_nodes();
        assert!(
            world.graph().max_degree() == 2 && world.graph().num_edges() == n,
            "spacer requires a ring (every node degree 2)"
        );
        assert!(gap >= 1, "spacer gap must be at least 1");
        assert!(
            (k as u64).saturating_mul(gap) <= n as u64,
            "spacer needs k·gap ≤ n ({k}·{gap} > {n})"
        );
        Spacer {
            steps_left: (0..k as u64).map(|i| gap * i).collect(),
            last_pin: vec![None; k],
            settled: vec![false; k],
            settled_count: 0,
            gap,
        }
    }
}

impl AgentProtocol for Spacer {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let i = agent.index();
        if self.settled[i] {
            return;
        }
        if self.steps_left[i] == 0 {
            self.settled[i] = true;
            self.settled_count += 1;
            ctx.park(agent);
            return;
        }
        // Same direction for everyone: out through port 1 first, then
        // always out through the port we did not arrive by.
        let port = match self.last_pin[i] {
            None => Port(1),
            Some(pin) => Port(3 - pin.0),
        };
        match ctx.try_move_via(port) {
            Ok(pin) => {
                self.last_pin[i] = Some(pin);
                self.steps_left[i] -= 1;
            }
            // Edge down: wait in place, retry next activation.
            Err(MoveError::EdgeDown { .. }) => {}
            Err(e) => panic!("agent {agent} illegal spacer move: {e}"),
        }
    }

    fn is_terminated(&self) -> bool {
        self.settled_count == self.settled.len()
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        self.settled[agent.index()]
    }

    fn memory_bits(&self, _agent: AgentId) -> usize {
        // Remaining-hop counter, last arrival port, settled flag.
        bits::counter_bits(self.gap.saturating_mul(self.settled.len() as u64))
            + bits::opt_port_bits(2)
            + bits::flag_bits()
    }

    fn name(&self) -> &'static str {
        "spacer"
    }
}

/// Registry factory for [`Spacer`] — rooted rings, any schedule, dynamic
/// edges tolerated. Parameter: `gap` (target pairwise distance, default 2).
pub struct SpacerFactory;

impl AlgorithmFactory for SpacerFactory {
    fn label(&self) -> &'static str {
        "spacer"
    }

    fn supports_dynamic(&self) -> bool {
        true
    }

    fn default_params(&self) -> Params {
        Params::new().set("gap", ParamValue::U64(2))
    }

    fn build(&self, world: &World, params: &Params, _seed: u64) -> Box<dyn AgentProtocol> {
        Box::new(Spacer::new(world, params.u64_or("gap", 2)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Registry, ScenarioSpec, Schedule};
    use disp_graph::generators::GraphFamily;

    fn registry() -> Registry {
        Registry::builtin().with(SpacerFactory)
    }

    #[test]
    fn spacer_achieves_exactly_its_gap() {
        let reg = registry();
        // k = 6 on a 24-ring with gap 3: dist3 must hold, dist4 must not.
        let base = ScenarioSpec::new(GraphFamily::Ring, 6, "spacer")
            .with_occupancy(0.25)
            .with_param("gap", ParamValue::U64(3));
        let hit = base.clone().with_min_distance(3).run(&reg, 1).unwrap();
        assert!(hit.outcome.terminated);
        assert!(hit.dispersed, "gap=3 must satisfy dist3");
        let miss = base.with_min_distance(4).run(&reg, 1).unwrap();
        assert!(miss.outcome.terminated);
        assert!(!miss.dispersed, "gap=3 must fail dist4");
    }

    #[test]
    fn spacer_survives_the_dynamic_ring_adversary() {
        let reg = registry();
        let spec = ScenarioSpec::new(GraphFamily::Ring, 8, "spacer")
            .with_occupancy(0.5)
            .with_dynamic_ring(1)
            .with_min_distance(2);
        let a = spec.run(&reg, 11).unwrap();
        let b = spec.run(&reg, 11).unwrap();
        assert!(a.outcome.terminated);
        assert!(a.dispersed, "edge churn only delays the walks");
        assert_eq!(a.outcome, b.outcome, "fault injection is seed-determined");
    }

    #[test]
    fn spacer_runs_async_too() {
        let reg = registry();
        let spec = ScenarioSpec::new(GraphFamily::Ring, 6, "spacer")
            .with_occupancy(0.5)
            .with_schedule(Schedule::AsyncRoundRobin)
            .with_min_distance(2);
        let report = spec.run(&reg, 2).unwrap();
        assert!(report.dispersed);
    }

    #[test]
    #[should_panic(expected = "k·gap ≤ n")]
    fn spacer_rejects_overfull_rings() {
        let reg = registry();
        // k = 8 on an 8-ring with gap 2: 16 > 8.
        let spec = ScenarioSpec::new(GraphFamily::Ring, 8, "spacer");
        let _ = spec.run(&reg, 1);
    }
}
