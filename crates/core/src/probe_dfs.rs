//! Doubling-probe DFS dispersion: the paper's `RootedAsyncDisp`
//! (Algorithm 8, built from `Async_Probe` = Algorithm 3 and
//! `Guest_See_Off` = Algorithm 4, Theorem 7.1).
//!
//! Run under the ASYNC scheduler this is the paper's `O(k log k)`-epoch,
//! `O(log(k+Δ))`-bit rooted dispersion algorithm. Run under the SYNC
//! scheduler the very same protocol reproduces the Sudo et al. [DISC'24]
//! style doubling-probe baseline (`O(k log k)` rounds), which is what the
//! paper extends to asynchrony.
//!
//! ## How probing works
//!
//! The group (leader `a_max` plus the unsettled followers) sits at a DFS node
//! `w` whose settler `α(w)` stays put. To find a fully-unsettled neighbor:
//!
//! 1. The leader assigns one unprobed port each to the available helpers
//!    (unsettled followers plus *guests* — settlers recruited from already
//!    probed neighbors). Each helper makes a round trip through its port.
//! 2. A helper that finds a settler at the neighbor recruits it: the settler
//!    walks to `w` and becomes a guest (remembering the port of `w` it came
//!    in through, so it can go home later). A helper that finds no settler
//!    reports the port as leading to a fully-unsettled node.
//! 3. Every completed iteration without a hit doubles the helper pool, so at
//!    most `O(log min{k, δ_w})` iterations (2 epochs each) are needed.
//! 4. Before the DFS moves on, `Guest_See_Off` sends every guest home in
//!    `O(log k)` halving rounds: guests are paired, each pair walks to the
//!    first guest's home, the second guest confirms the first arrived and
//!    returns; a single leftover guest is escorted by `α(w)` itself.
//!
//! Waiting until guests are confirmed home is what makes the probe results
//! trustworthy under asynchrony (paper §4.3): a node reported empty really
//! is fully unsettled, never the momentarily-vacant home of a helper.
//!
//! ## Flat-state execution
//!
//! This implementation rides the follower group in a world *cohort* (see
//! `disp_sim::world`): followers are enrolled as passengers, the leader
//! moves the whole group with one O(1) cohort move per edge, and followers
//! are extracted only to settle or to serve as probers. Settled agents and
//! idle guests are parked off the runners' worklist and woken exactly when
//! another agent's action makes them actionable (a recruit, a probe
//! assignment, a see-off order). The realized schedule is the one where
//! every follower executes the leader's movement order immediately — a
//! legal refinement of the flip-order movement protocol under both
//! schedulers (`DESIGN.md` §8). The protocol also keeps a per-node settler
//! index (`settled_at`), a simulation-level cache of the locally-observable
//! "does this node host a settled agent" query that every visit is entitled
//! to make; it turns the O(occupants) co-location scans of the old
//! implementation into O(1) lookups.
//!
//! ## Structure-of-arrays state (DESIGN.md §13)
//!
//! Per-agent state is stored data-oriented rather than as a
//! `Vec<AgentState>` of enums: one `u8` tag per agent (role × stage,
//! flattened — see the private `tag` module) plus parallel packed field arrays (`p0..p3` for
//! ports, with `Port(0)` as the `None` sentinel — ports are 1-based — and
//! `aux0`/`aux1` for counters and agent references). An activation reads
//! the tag byte, dispatches, and touches only the two or three fields its
//! arm needs, instead of copying a 40-byte enum in and out of the state
//! vector. The rider / idle-guest / returned-prober lists thread through
//! one shared [`ListArena`] slab (intrusive index-linked lists), so after
//! construction the protocol performs no further heap allocation beyond
//! one reusable scratch buffer. The `tests/soa_differential.rs` suite pins
//! this rewrite step-for-step to the retained enum-of-structs reference.
//!
//! This protocol assumes a **rooted** initial configuration (all agents on
//! one node); see `DESIGN.md` for how general configurations are handled.
//!
//! ## Dynamic-graph hardening
//!
//! Every move goes through the fallible [`ActivationCtx::try_move_via`] /
//! [`ActivationCtx::try_move_cohort_via`] path: when the dynamic adversary
//! has the chosen edge down ([`MoveError::EdgeDown`]), the agent simply
//! stays in its current stage and retries on its next activation — no state
//! advances, so when the edge returns (one round later, in the
//! arXiv 2408.12220 model) the walk resumes exactly where it stalled. This
//! is what lets the registry declare `supports_dynamic` for `probe-dfs`.

use disp_graph::Port;
use disp_sim::{
    bits, ActivationCtx, AgentId, AgentProtocol, ListArena, ListHandle, MoveError, World,
};

const NO_SETTLER: u32 = u32::MAX;
/// The `Option<Port>` sentinel: ports are 1-based, so `Port(0)` is free.
const NO_PORT: Port = Port(0);

#[inline]
fn opt(p: Port) -> Option<Port> {
    (p != NO_PORT).then_some(p)
}

#[inline]
fn enc(p: Option<Port>) -> Port {
    p.unwrap_or(NO_PORT)
}

/// Attempt a move; `None` means the edge is down — wait in place and retry
/// on the next activation. Any other failure is a protocol bug.
fn try_move(ctx: &mut ActivationCtx<'_>, port: Port) -> Option<Port> {
    match ctx.try_move_via(port) {
        Ok(pin) => Some(pin),
        Err(MoveError::EdgeDown { .. }) => None,
        Err(e) => panic!("illegal probe-dfs move: {e}"),
    }
}

/// Milestone code recorded (when tracing is enabled) each time an agent
/// settles: exactly `k` of these fire in a dispersing run, one per agent,
/// at the node it ends on. Unsettling (a settler recruited as a guest and
/// later re-settled) records the code again at the new settlement.
pub const MILESTONE_SETTLED: u32 = 1;

/// The flattened role × stage tag — the one byte the dispatcher reads.
///
/// Grouped by role, contiguous per role so dispatch and memory accounting
/// test one range; boolean stage payloads (`found_settler`) are folded into
/// the tag so the packed field arrays hold only ports, counters and agent
/// references.
mod tag {
    /// Unsettled follower riding the leader's cohort (parked).
    pub const RIDER: u8 = 0;
    /// Settled at the current node. Fields: `p0` = parent port (opt).
    pub const SETTLED: u8 = 1;

    // Prober (fields: `p0` = probe port, `p1` = pin (opt), `p2` = origin
    // home port — `NO_PORT` means the prober is a follower, a real port a
    // recruited guest —, `p3` = origin saved parent port (opt), `aux0` =
    // recruited settler id while waiting for it to leave).
    pub const PROBER_OUT: u8 = 2;
    pub const PROBER_AT_NEIGHBOR: u8 = 3;
    pub const PROBER_WAIT_GUEST_GONE: u8 = 4;
    pub const PROBER_GO_HOME_EMPTY: u8 = 5;
    pub const PROBER_GO_HOME_FOUND: u8 = 6;
    pub const PROBER_RETURNED_EMPTY: u8 = 7;
    pub const PROBER_RETURNED_FOUND: u8 = 8;

    // Guest (fields: `p0` = saved parent port (opt), `p1` = travel port —
    // the walk port while moving, the home port while idle).
    pub const GUEST_TO_PROBE_SITE: u8 = 9;
    pub const GUEST_IDLE: u8 = 10;
    pub const GUEST_GOING_HOME: u8 = 11;

    // Escort (fields: `p0` = via, `p1` = pin (opt), `p2` = own home port —
    // `NO_PORT` means the escort is the node settler α(w) —, `p3` = own
    // saved parent port (opt), `aux0` = α(w)'s parent port, sentinel-coded).
    pub const ESCORT_GOING: u8 = 12;
    pub const ESCORT_AT_PARTNER_HOME: u8 = 13;
    pub const ESCORT_RETURNED: u8 = 14;

    // Leader (fields: `p0` = arrival pin (opt), `p1` = smallest port found
    // empty (opt), `p2` = solo-probe pin (opt), `aux0` = ports checked,
    // `aux1` = phase payload: probers assigned / recruited settler id /
    // expected idle guests).
    pub const LEAD_ENROLL: u8 = 15;
    pub const LEAD_DECIDE: u8 = 16;
    pub const LEAD_PROBE_ASSIGN: u8 = 17;
    pub const LEAD_PROBE_WAIT: u8 = 18;
    pub const LEAD_SOLO_OUT: u8 = 19;
    pub const LEAD_SOLO_AT_NEIGHBOR: u8 = 20;
    pub const LEAD_SOLO_WAIT_GUEST_GONE: u8 = 21;
    pub const LEAD_SOLO_RETURN_EMPTY: u8 = 22;
    pub const LEAD_SOLO_RETURN_FOUND: u8 = 23;
    pub const LEAD_SEE_OFF_ASSIGN: u8 = 24;
    pub const LEAD_SEE_OFF_WAIT: u8 = 25;
    pub const LEAD_SEE_OFF_WAIT_SETTLER: u8 = 26;
    pub const LEAD_ARRIVE_FORWARD: u8 = 27;
}

/// Number of memory classes (coarse roles with a fixed bit footprint):
/// rider, prober, guest, escort, settled, leader.
const CLASSES: usize = 6;

/// Class names in [`class`] index order, for the flight recorder's
/// per-role histogram ([`AgentProtocol::class_counts`]). The settled class
/// must be named exactly `"settled"` — the recorder keys on it.
const CLASS_NAMES: [&str; CLASSES] = ["rider", "prober", "guest", "escort", "settled", "leader"];

/// The memory class of a tag — the coarse role; every stage of a role has
/// the same persistent footprint.
#[inline]
fn class(t: u8) -> usize {
    match t {
        tag::RIDER => 0,
        tag::SETTLED => 4,
        tag::PROBER_OUT..=tag::PROBER_RETURNED_FOUND => 1,
        tag::GUEST_TO_PROBE_SITE..=tag::GUEST_GOING_HOME => 2,
        tag::ESCORT_GOING..=tag::ESCORT_RETURNED => 3,
        _ => 5,
    }
}

/// Per-class footprint in bits, counted as the paper counts it (the same
/// accounting the pre-SoA enum variants used).
fn class_bits_table(k: usize, max_degree: usize) -> [usize; CLASSES] {
    let id = bits::id_bits(k);
    let port = bits::port_bits(max_degree);
    let opt_port = bits::opt_port_bits(max_degree);
    [
        // rider: id + riding flag
        id + 1,
        // prober: id + stage + port + pin + origin flag + origin id + ports
        id + 3 + port + opt_port + 1 + id + 2 * opt_port,
        // guest: id + stage + saved parent + travel port
        id + 2 + opt_port + port,
        // escort: id + stage + guest ports + via + pin
        id + 2 + 2 * opt_port + port + opt_port,
        // settled: id + parent port
        id + opt_port,
        // leader: id + phase + counters + ports
        id + 4
            + bits::counter_bits(k as u64)
            + 1
            + port
            + 2 * opt_port
            + bits::counter_bits(max_degree as u64)
            + opt_port
            + opt_port,
    ]
}

/// The doubling-probe dispersion protocol (rooted configurations),
/// structure-of-arrays layout.
#[derive(Debug)]
pub struct ProbeDfs {
    /// Role × stage per agent — the dispatch byte (see [`tag`]).
    tags: Vec<u8>,
    /// Number of agents per memory class; with [`class_bits`](Self::new)
    /// this makes peak-memory sampling `O(1)` instead of an `O(k)` scan.
    class_counts: [u32; CLASSES],
    /// Per-class footprint in bits (a function of `k` and `Δ` only).
    class_bits: [usize; CLASSES],
    /// Packed port fields (`NO_PORT` = none); meaning per role in [`tag`].
    p0: Vec<Port>,
    p1: Vec<Port>,
    p2: Vec<Port>,
    p3: Vec<Port>,
    /// Packed counter / agent-reference fields; meaning per role in [`tag`].
    aux0: Vec<u32>,
    aux1: Vec<u32>,
    k: usize,
    settled_count: usize,
    /// The shared slab behind the three bookkeeping lists.
    lists: ListArena,
    /// Unsettled followers riding the cohort, ascending by id (front =
    /// smallest, the next to settle or probe).
    riders: ListHandle,
    /// Guests idle at the current probe node, ascending by id.
    idle_guests: ListHandle,
    /// Probers back at the probe node in arrival order, awaiting collection.
    returned_probers: ListHandle,
    /// Reusable drain buffer for prober collection and see-off pairing.
    scratch: Vec<AgentId>,
    /// `node → settler agent` cache (see the module docs).
    settled_at: Vec<u32>,
    /// Counts `Async_Probe` invocations (one per `Decide`), for tests.
    probe_invocations: u64,
    /// Largest number of probe iterations within a single invocation.
    max_probe_iterations: u32,
    current_probe_iterations: u32,
}

impl ProbeDfs {
    /// Build the protocol for a rooted world (all agents on one node).
    pub fn new(world: &World) -> Self {
        let k = world.num_agents();
        let root = world.position(AgentId(0));
        assert!(
            (0..k).all(|i| world.position(AgentId(i as u32)) == root),
            "ProbeDfs handles rooted initial configurations; use KsDfs or the general wrappers for scattered starts"
        );
        let leader = AgentId(k as u32 - 1);
        let mut tags = vec![tag::RIDER; k];
        tags[leader.index()] = tag::LEAD_ENROLL;
        let mut lists = ListArena::new(k);
        let mut riders = ListHandle::new();
        for i in 0..k as u32 - 1 {
            lists.push_back(&mut riders, AgentId(i));
        }
        let mut class_counts = [0u32; CLASSES];
        class_counts[0] = k as u32 - 1; // riders
        class_counts[5] = 1; // the leader
        ProbeDfs {
            tags,
            class_counts,
            class_bits: class_bits_table(k, world.graph().max_degree()),
            p0: vec![NO_PORT; k],
            p1: vec![NO_PORT; k],
            p2: vec![NO_PORT; k],
            p3: vec![NO_PORT; k],
            aux0: vec![0; k],
            aux1: vec![0; k],
            k,
            settled_count: 0,
            lists,
            riders,
            idle_guests: ListHandle::new(),
            returned_probers: ListHandle::new(),
            scratch: Vec::new(),
            settled_at: vec![NO_SETTLER; world.graph().num_nodes()],
            probe_invocations: 0,
            max_probe_iterations: 0,
            current_probe_iterations: 0,
        }
    }

    /// Number of `Async_Probe` invocations so far (≤ 2(k-1) by Theorem 7.1's
    /// accounting).
    pub fn probe_invocations(&self) -> u64 {
        self.probe_invocations
    }

    /// Largest number of doubling iterations observed within one probe
    /// invocation (should stay `O(log min{k, Δ})`).
    pub fn max_probe_iterations(&self) -> u32 {
        self.max_probe_iterations
    }

    #[inline]
    fn settler_here(&self, ctx: &ActivationCtx<'_>) -> Option<AgentId> {
        match self.settled_at[ctx.node().index()] {
            NO_SETTLER => None,
            a => Some(AgentId(a)),
        }
    }

    /// The single tag-write point: keeps the per-class counts (and with them
    /// the `O(1)` peak-memory sampling) coherent.
    #[inline]
    fn set_tag(&mut self, i: usize, t: u8) {
        self.class_counts[class(self.tags[i])] -= 1;
        self.class_counts[class(t)] += 1;
        self.tags[i] = t;
    }

    fn settle(&mut self, ctx: &mut ActivationCtx<'_>, agent: AgentId, parent_port: Option<Port>) {
        self.set_tag(agent.index(), tag::SETTLED);
        self.p0[agent.index()] = enc(parent_port);
        self.settled_at[ctx.node().index()] = agent.0;
        self.settled_count += 1;
        ctx.milestone(agent, MILESTONE_SETTLED);
        ctx.park(agent);
    }

    fn unsettle(&mut self, ctx: &mut ActivationCtx<'_>, settler: AgentId) -> Option<Port> {
        debug_assert_eq!(
            self.tags[settler.index()],
            tag::SETTLED,
            "unsettle on a non-settled agent"
        );
        let parent_port = opt(self.p0[settler.index()]);
        self.settled_at[ctx.node().index()] = NO_SETTLER;
        self.settled_count -= 1;
        ctx.wake(settler);
        parent_port
    }

    /// Settle the smallest rider at the current node — or the leader itself
    /// when the group is exhausted, in which case `true` is returned.
    fn settle_next(
        &mut self,
        ctx: &mut ActivationCtx<'_>,
        leader: AgentId,
        arrival_pin: Option<Port>,
    ) -> bool {
        match self.lists.pop_front(&mut self.riders) {
            None => {
                self.settle(ctx, leader, arrival_pin);
                true
            }
            Some(chosen) => {
                ctx.extract(chosen);
                self.settle(ctx, chosen, arrival_pin);
                // Test-of-the-test (see Cargo.toml): at the third
                // settlement, settle a second agent on the same node. The
                // invariant harness must catch this at that very step.
                #[cfg(feature = "inject-collision")]
                if self.settled_count == 3 {
                    if let Some(extra) = self.lists.pop_front(&mut self.riders) {
                        ctx.extract(extra);
                        self.settle(ctx, extra, arrival_pin);
                    }
                }
                false
            }
        }
    }

    // ------------------------------------------------------------------
    // Leader
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn act_leader(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        match self.tags[a] {
            tag::LEAD_ENROLL => {
                for i in 0..self.k as u32 {
                    if AgentId(i) != agent {
                        ctx.enroll(AgentId(i));
                    }
                }
                self.set_tag(a, tag::LEAD_DECIDE);
            }

            tag::LEAD_DECIDE => {
                if self.settler_here(ctx).is_none() {
                    // Start node: settle the smallest follower (or the leader
                    // itself if it is alone).
                    let arrival_pin = opt(self.p0[a]);
                    self.settle_next(ctx, agent, arrival_pin);
                } else {
                    // Begin a fresh Async_Probe invocation at this node.
                    self.aux0[a] = 0;
                    self.p1[a] = NO_PORT;
                    self.probe_invocations += 1;
                    self.current_probe_iterations = 0;
                    self.set_tag(a, tag::LEAD_PROBE_ASSIGN);
                }
            }

            tag::LEAD_PROBE_ASSIGN => {
                let checked = self.aux0[a];
                if self.p1[a] != NO_PORT || checked as usize >= ctx.degree() {
                    let next = if self.idle_guests.is_empty() {
                        // Settler is present; falls through to movement.
                        tag::LEAD_SEE_OFF_WAIT_SETTLER
                    } else {
                        tag::LEAD_SEE_OFF_ASSIGN
                    };
                    self.set_tag(a, next);
                } else {
                    self.current_probe_iterations += 1;
                    self.max_probe_iterations =
                        self.max_probe_iterations.max(self.current_probe_iterations);
                    let avail = self.idle_guests.len() + self.riders.len();
                    if avail == 0 {
                        // The leader is the only unsettled agent left at this
                        // node: probe the next port itself.
                        let port = Port(checked + 1);
                        if let Some(pin) = try_move(ctx, port) {
                            self.p2[a] = pin;
                            self.set_tag(a, tag::LEAD_SOLO_OUT);
                        }
                    } else {
                        // Assign the `want` smallest-id helpers from the
                        // union of idle guests and riders (both lists are
                        // ascending: merge by taking the smaller front).
                        let want = (ctx.degree() - checked as usize).min(avail);
                        for i in 0..want {
                            let port = Port(checked + 1 + i as u32);
                            let take_guest = match (self.idle_guests.front(), self.riders.front()) {
                                (Some(g), Some(r)) => g.0 < r.0,
                                (Some(_), None) => true,
                                (None, _) => false,
                            };
                            let helper = if take_guest {
                                let g = self
                                    .lists
                                    .pop_front(&mut self.idle_guests)
                                    .expect("guest available");
                                let gi = g.index();
                                debug_assert_eq!(self.tags[gi], tag::GUEST_IDLE);
                                // Guest home port / saved parent move to the
                                // prober origin slots p2/p3.
                                self.p2[gi] = self.p1[gi];
                                self.p3[gi] = self.p0[gi];
                                ctx.wake(g);
                                g
                            } else {
                                let r = self
                                    .lists
                                    .pop_front(&mut self.riders)
                                    .expect("rider available");
                                ctx.extract(r);
                                let ri = r.index();
                                self.p2[ri] = NO_PORT;
                                self.p3[ri] = NO_PORT;
                                r
                            };
                            let h = helper.index();
                            self.set_tag(h, tag::PROBER_OUT);
                            self.p0[h] = port;
                            self.p1[h] = NO_PORT;
                        }
                        self.aux0[a] = checked + want as u32;
                        self.aux1[a] = want as u32;
                        self.set_tag(a, tag::LEAD_PROBE_WAIT);
                    }
                }
            }

            tag::LEAD_PROBE_WAIT => {
                if self.returned_probers.len() as u32 == self.aux1[a] {
                    // Collect reports, revert probers (in arrival order).
                    let mut probers = std::mem::take(&mut self.scratch);
                    self.lists
                        .drain_into(&mut self.returned_probers, &mut probers);
                    for &prober in &probers {
                        let p = prober.index();
                        let found_settler = match self.tags[p] {
                            tag::PROBER_RETURNED_FOUND => true,
                            tag::PROBER_RETURNED_EMPTY => false,
                            t => unreachable!("returned prober in stage {t}"),
                        };
                        if !found_settler {
                            let port = self.p0[p];
                            self.p1[a] = match opt(self.p1[a]) {
                                Some(q) if q < port => q,
                                _ => port,
                            };
                        }
                        if self.p2[p] == NO_PORT {
                            // Follower origin: back onto the cohort.
                            self.set_tag(p, tag::RIDER);
                            ctx.enroll(prober);
                            self.lists.insert_sorted(&mut self.riders, prober);
                        } else {
                            // Guest origin: back to idling at the probe node.
                            self.set_tag(p, tag::GUEST_IDLE);
                            self.p0[p] = self.p3[p];
                            self.p1[p] = self.p2[p];
                            ctx.park(prober);
                            self.lists.insert_sorted(&mut self.idle_guests, prober);
                        }
                    }
                    probers.clear();
                    self.scratch = probers;
                    self.set_tag(a, tag::LEAD_PROBE_ASSIGN);
                }
            }

            tag::LEAD_SOLO_OUT => {
                // Arrived at the solo-probed neighbor.
                self.set_tag(a, tag::LEAD_SOLO_AT_NEIGHBOR);
            }

            tag::LEAD_SOLO_AT_NEIGHBOR => {
                if let Some(settler) = self.settler_here(ctx) {
                    let parent_port = self.unsettle(ctx, settler);
                    let s = settler.index();
                    self.set_tag(s, tag::GUEST_TO_PROBE_SITE);
                    self.p0[s] = enc(parent_port);
                    self.p1[s] = self.p2[a];
                    debug_assert_ne!(self.p1[s], NO_PORT, "solo pin recorded");
                    self.aux1[a] = settler.0;
                    self.set_tag(a, tag::LEAD_SOLO_WAIT_GUEST_GONE);
                } else {
                    let pin = self.p2[a];
                    debug_assert_ne!(pin, NO_PORT, "solo pin recorded");
                    if try_move(ctx, pin).is_some() {
                        self.set_tag(a, tag::LEAD_SOLO_RETURN_EMPTY);
                    }
                }
            }

            tag::LEAD_SOLO_WAIT_GUEST_GONE => {
                let recruited = AgentId(self.aux1[a]);
                if !ctx.colocated_iter().any(|peer| peer == recruited) {
                    let pin = self.p2[a];
                    debug_assert_ne!(pin, NO_PORT, "solo pin recorded");
                    if try_move(ctx, pin).is_some() {
                        self.set_tag(a, tag::LEAD_SOLO_RETURN_FOUND);
                    }
                }
            }

            t @ (tag::LEAD_SOLO_RETURN_EMPTY | tag::LEAD_SOLO_RETURN_FOUND) => {
                // Back at the DFS node.
                if t == tag::LEAD_SOLO_RETURN_EMPTY {
                    self.p1[a] = Port(self.aux0[a] + 1);
                }
                self.aux0[a] += 1;
                self.p2[a] = NO_PORT;
                self.set_tag(a, tag::LEAD_PROBE_ASSIGN);
            }

            tag::LEAD_SEE_OFF_ASSIGN => {
                let x = self.idle_guests.len();
                match x {
                    0 => self.movement(ctx, agent, tag::LEAD_SEE_OFF_ASSIGN),
                    1 => {
                        // α(w) escorts the single leftover guest home.
                        let guest = self
                            .lists
                            .pop_front(&mut self.idle_guests)
                            .expect("one idle guest");
                        let settler = self
                            .settler_here(ctx)
                            .expect("probe node must have a settler");
                        let g = guest.index();
                        debug_assert_eq!(self.tags[g], tag::GUEST_IDLE);
                        let home_port = self.p1[g];
                        let settler_parent = self.unsettle(ctx, settler);
                        // The guest walks home: p0 (saved parent) stays and
                        // p1 already holds the home port it walks through.
                        self.set_tag(g, tag::GUEST_GOING_HOME);
                        ctx.wake(guest);
                        let s = settler.index();
                        self.set_tag(s, tag::ESCORT_GOING);
                        self.p0[s] = home_port;
                        self.p1[s] = NO_PORT;
                        self.p2[s] = NO_PORT;
                        self.p3[s] = NO_PORT;
                        self.aux0[s] = enc(settler_parent).0;
                        self.set_tag(a, tag::LEAD_SEE_OFF_WAIT_SETTLER);
                    }
                    x => {
                        let pairs = x / 2;
                        let mut guests = std::mem::take(&mut self.scratch);
                        self.lists.drain_into(&mut self.idle_guests, &mut guests);
                        for i in 0..pairs {
                            let walker = guests[2 * i];
                            let escort = guests[2 * i + 1];
                            let w = walker.index();
                            let e = escort.index();
                            let walker_parent = self.p0[w];
                            let walker_home = self.p1[w];
                            let escort_parent = self.p0[e];
                            let escort_home = self.p1[e];
                            // The first guest walks home (p1 already holds
                            // its home port); the second escorts it there.
                            self.set_tag(w, tag::GUEST_GOING_HOME);
                            ctx.wake(walker);
                            self.set_tag(e, tag::ESCORT_GOING);
                            self.p0[e] = walker_home;
                            self.p1[e] = NO_PORT;
                            self.p2[e] = escort_home;
                            self.p3[e] = escort_parent;
                            self.aux0[e] = walker_parent.0;
                            ctx.wake(escort);
                        }
                        // An odd leftover guest stays idle (and parked).
                        if x % 2 == 1 {
                            self.lists.push_back(&mut self.idle_guests, guests[x - 1]);
                        }
                        guests.clear();
                        self.scratch = guests;
                        self.aux1[a] = (x - pairs) as u32;
                        self.set_tag(a, tag::LEAD_SEE_OFF_WAIT);
                    }
                }
            }

            tag::LEAD_SEE_OFF_WAIT => {
                if self.idle_guests.len() as u32 == self.aux1[a] {
                    self.set_tag(a, tag::LEAD_SEE_OFF_ASSIGN);
                }
            }

            tag::LEAD_SEE_OFF_WAIT_SETTLER => {
                if self.settler_here(ctx).is_some() {
                    self.movement(ctx, agent, tag::LEAD_SEE_OFF_WAIT_SETTLER);
                }
            }

            tag::LEAD_ARRIVE_FORWARD => {
                debug_assert!(
                    self.settler_here(ctx).is_none(),
                    "forward target must be fully unsettled"
                );
                let arrival_pin = opt(self.p0[a]);
                if !self.settle_next(ctx, agent, arrival_pin) {
                    self.set_tag(a, tag::LEAD_DECIDE);
                }
            }

            t => unreachable!("act_leader on non-leader tag {t}"),
        }
    }

    /// Execute the DFS move (forward to the discovered unsettled neighbor, or
    /// backtrack to the parent) — the whole cohort rides along. When the
    /// dynamic adversary has the edge down, the group stays put and the
    /// leader remains in `stay`, retrying on its next activation.
    fn movement(&mut self, ctx: &mut ActivationCtx<'_>, leader: AgentId, stay: u8) {
        let a = leader.index();
        let (p, arrived) = match opt(self.p1[a]) {
            Some(p) => (p, tag::LEAD_ARRIVE_FORWARD),
            None => {
                let settler = self
                    .settler_here(ctx)
                    .expect("backtracking from a settled node");
                debug_assert_eq!(self.tags[settler.index()], tag::SETTLED);
                let p = opt(self.p0[settler.index()])
                    .expect("DFS root can only be exhausted after every agent settled");
                (p, tag::LEAD_DECIDE)
            }
        };
        match ctx.try_move_cohort_via(p) {
            Ok(pin) => {
                self.p0[a] = pin;
                self.set_tag(a, arrived);
            }
            Err(MoveError::EdgeDown { .. }) => self.set_tag(a, stay),
            Err(e) => panic!("illegal probe-dfs cohort move: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn act_prober(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        match self.tags[a] {
            tag::PROBER_OUT => {
                if let Some(p) = try_move(ctx, self.p0[a]) {
                    self.p1[a] = p;
                    self.set_tag(a, tag::PROBER_AT_NEIGHBOR);
                }
            }
            tag::PROBER_AT_NEIGHBOR => {
                if let Some(settler) = self.settler_here(ctx) {
                    let parent_port = self.unsettle(ctx, settler);
                    let s = settler.index();
                    self.set_tag(s, tag::GUEST_TO_PROBE_SITE);
                    self.p0[s] = enc(parent_port);
                    self.p1[s] = self.p1[a];
                    debug_assert_ne!(self.p1[s], NO_PORT, "pin recorded on the way out");
                    self.aux0[a] = settler.0;
                    self.set_tag(a, tag::PROBER_WAIT_GUEST_GONE);
                } else {
                    self.set_tag(a, tag::PROBER_GO_HOME_EMPTY);
                }
            }
            tag::PROBER_WAIT_GUEST_GONE => {
                let recruited = AgentId(self.aux0[a]);
                if !ctx.colocated_iter().any(|peer| peer == recruited) {
                    self.set_tag(a, tag::PROBER_GO_HOME_FOUND);
                }
            }
            t @ (tag::PROBER_GO_HOME_EMPTY | tag::PROBER_GO_HOME_FOUND) => {
                let pin = self.p1[a];
                debug_assert_ne!(pin, NO_PORT, "pin recorded on the way out");
                if try_move(ctx, pin).is_some() {
                    self.set_tag(
                        a,
                        if t == tag::PROBER_GO_HOME_FOUND {
                            tag::PROBER_RETURNED_FOUND
                        } else {
                            tag::PROBER_RETURNED_EMPTY
                        },
                    );
                    self.lists.push_back(&mut self.returned_probers, agent);
                    ctx.park(agent);
                }
            }
            tag::PROBER_RETURNED_EMPTY | tag::PROBER_RETURNED_FOUND => {}
            t => unreachable!("act_prober on non-prober tag {t}"),
        }
    }

    fn act_guest(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        match self.tags[a] {
            tag::GUEST_TO_PROBE_SITE => {
                let Some(pin) = try_move(ctx, self.p1[a]) else {
                    return;
                };
                self.set_tag(a, tag::GUEST_IDLE);
                self.p1[a] = pin;
                self.lists.insert_sorted(&mut self.idle_guests, agent);
                ctx.park(agent);
            }
            tag::GUEST_IDLE => {}
            tag::GUEST_GOING_HOME => {
                if try_move(ctx, self.p1[a]).is_none() {
                    return;
                }
                // Re-settle at home: p0 already holds the saved parent port.
                self.set_tag(a, tag::SETTLED);
                self.settled_at[ctx.node().index()] = agent.0;
                self.settled_count += 1;
                ctx.park(agent);
            }
            t => unreachable!("act_guest on non-guest tag {t}"),
        }
    }

    fn act_escort(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        match self.tags[a] {
            tag::ESCORT_GOING => {
                if let Some(p) = try_move(ctx, self.p0[a]) {
                    self.p1[a] = p;
                    self.set_tag(a, tag::ESCORT_AT_PARTNER_HOME);
                }
            }
            tag::ESCORT_AT_PARTNER_HOME => {
                // Wait until the partner guest has arrived and re-settled.
                if self.settler_here(ctx).is_some() {
                    let pin = self.p1[a];
                    debug_assert_ne!(pin, NO_PORT, "pin recorded on the way out");
                    if try_move(ctx, pin).is_some() {
                        self.set_tag(a, tag::ESCORT_RETURNED);
                    }
                }
            }
            tag::ESCORT_RETURNED => {
                // Restore.
                if self.p2[a] == NO_PORT {
                    // α(w): re-settle at the probe node.
                    self.set_tag(a, tag::SETTLED);
                    self.p0[a] = Port(self.aux0[a]);
                    self.settled_at[ctx.node().index()] = agent.0;
                    self.settled_count += 1;
                    ctx.park(agent);
                } else {
                    // A guest escort: back to idling at the probe node.
                    self.set_tag(a, tag::GUEST_IDLE);
                    self.p0[a] = self.p3[a];
                    self.p1[a] = self.p2[a];
                    self.lists.insert_sorted(&mut self.idle_guests, agent);
                    ctx.park(agent);
                }
            }
            t => unreachable!("act_escort on non-escort tag {t}"),
        }
    }
}

impl AgentProtocol for ProbeDfs {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        match self.tags[agent.index()] {
            tag::RIDER | tag::SETTLED => {}
            tag::PROBER_OUT..=tag::PROBER_RETURNED_FOUND => self.act_prober(agent, ctx),
            tag::GUEST_TO_PROBE_SITE..=tag::GUEST_GOING_HOME => self.act_guest(agent, ctx),
            tag::ESCORT_GOING..=tag::ESCORT_RETURNED => self.act_escort(agent, ctx),
            _ => self.act_leader(agent, ctx),
        }
    }

    fn is_terminated(&self) -> bool {
        self.settled_count == self.k
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        self.tags[agent.index()] == tag::SETTLED
    }

    fn memory_bits(&self, agent: AgentId) -> usize {
        self.class_bits[class(self.tags[agent.index()])]
    }

    fn max_memory_bits(&self) -> Option<usize> {
        Some(
            (0..CLASSES)
                .filter(|&c| self.class_counts[c] > 0)
                .map(|c| self.class_bits[c])
                .max()
                .unwrap_or(0),
        )
    }

    fn class_counts(&self, out: &mut Vec<(&'static str, u32)>) {
        for (name, &count) in CLASS_NAMES.iter().zip(&self.class_counts) {
            out.push((name, count));
        }
    }

    fn name(&self) -> &'static str {
        "probe-dfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_dispersion, envelope};
    use disp_graph::{generators, NodeId, Topology};
    use disp_sim::{
        AsyncRunner, LaggingAdversary, Outcome, RandomSubsetAdversary, RoundRobinAdversary,
        RunConfig, SyncRunner,
    };

    fn run_sync(world: &mut World) -> (Outcome, ProbeDfs) {
        let mut proto = ProbeDfs::new(world);
        let out = SyncRunner::new(RunConfig::default())
            .run(world, &mut proto)
            .expect("probe-dfs must terminate");
        check_dispersion(world).expect("probe-dfs must disperse");
        (out, proto)
    }

    fn run_async(world: &mut World, seed: u64) -> (Outcome, ProbeDfs) {
        let mut proto = ProbeDfs::new(world);
        let k = world.num_agents();
        let out = AsyncRunner::new(
            RunConfig::default(),
            RandomSubsetAdversary::new(0.5, k, seed),
        )
        .run(world, &mut proto)
        .expect("probe-dfs must terminate");
        check_dispersion(world).expect("probe-dfs must disperse");
        (out, proto)
    }

    #[test]
    fn line_rooted_sync() {
        let g = generators::line(16);
        let mut world = World::new_rooted(g, 16, NodeId(0));
        let (out, _) = run_sync(&mut world);
        assert!(out.terminated);
        assert!(envelope::within_k_log_k(&out, 25.0));
    }

    #[test]
    fn star_rooted_sync_probes_in_logarithmic_iterations() {
        let g = generators::star(40);
        let mut world = World::new_rooted(g, 40, NodeId(0));
        let (_, proto) = run_sync(&mut world);
        // Doubling probers: ⌈log₂ 39⌉ + 1 iterations at the hub at most.
        assert!(
            proto.max_probe_iterations() <= 8,
            "expected O(log k) probe iterations, saw {}",
            proto.max_probe_iterations()
        );
    }

    #[test]
    fn star_rooted_from_leaf() {
        let g = generators::star(24);
        let mut world = World::new_rooted(g, 24, NodeId(5));
        run_sync(&mut world);
    }

    #[test]
    fn complete_graph_rooted() {
        let g = generators::complete(12);
        let mut world = World::new_rooted(g, 12, NodeId(3));
        run_sync(&mut world);
    }

    #[test]
    fn implicit_topologies_rooted() {
        for t in [
            Topology::complete(24),
            Topology::hypercube(5),
            Topology::torus(5, 5),
        ] {
            let k = t.num_nodes();
            let mut world = World::new_rooted(t.clone(), k, NodeId(1));
            run_sync(&mut world);
            let mut world = World::new_rooted(t, k, NodeId(0));
            run_async(&mut world, 7);
        }
    }

    #[test]
    fn random_trees_many_seeds() {
        for seed in 0..4 {
            let g = generators::random_tree(30, seed);
            let mut world = World::new_rooted(g, 30, NodeId(0));
            run_sync(&mut world);
        }
    }

    #[test]
    fn random_graphs_k_less_than_n() {
        for seed in 0..3 {
            let g = generators::erdos_renyi_connected(40, 0.1, seed);
            let mut world = World::new_rooted(g, 25, NodeId(1));
            run_sync(&mut world);
        }
    }

    #[test]
    fn tiny_configurations() {
        for k in 1..=4 {
            let g = generators::line(6);
            let mut world = World::new_rooted(g, k, NodeId(2));
            let (out, _) = run_sync(&mut world);
            assert!(out.terminated, "k={k} must terminate");
        }
    }

    #[test]
    fn probe_invocation_count_is_at_most_2k() {
        let g = generators::random_tree(40, 11);
        let mut world = World::new_rooted(g, 40, NodeId(0));
        let (_, proto) = run_sync(&mut world);
        assert!(
            proto.probe_invocations() <= 2 * 40,
            "Async_Probe invoked {} times, expected ≤ 2(k-1)",
            proto.probe_invocations()
        );
    }

    #[test]
    fn async_round_robin() {
        let g = generators::random_tree(25, 2);
        let mut world = World::new_rooted(g, 25, NodeId(0));
        let mut proto = ProbeDfs::new(&world);
        let out = AsyncRunner::new(RunConfig::default(), RoundRobinAdversary::new(25))
            .run(&mut world, &mut proto)
            .unwrap();
        check_dispersion(&world).unwrap();
        assert!(envelope::within_k_log_k(&out, 40.0));
    }

    #[test]
    fn async_random_subset_various_seeds() {
        for seed in 0..3 {
            let g = generators::erdos_renyi_connected(30, 0.12, seed);
            let mut world = World::new_rooted(g, 30, NodeId(0));
            run_async(&mut world, seed * 7 + 1);
        }
    }

    #[test]
    fn async_lagging_adversary() {
        let g = generators::star(20);
        let mut world = World::new_rooted(g, 20, NodeId(0));
        let mut proto = ProbeDfs::new(&world);
        AsyncRunner::new(RunConfig::default(), LaggingAdversary::new(5, 20, 9))
            .run(&mut world, &mut proto)
            .unwrap();
        check_dispersion(&world).unwrap();
    }

    #[test]
    fn async_grid() {
        let g = generators::grid2d(5, 5);
        let mut world = World::new_rooted(g, 25, NodeId(12));
        run_async(&mut world, 3);
    }

    #[test]
    fn memory_stays_logarithmic() {
        let g = generators::star(80);
        let mut world = World::new_rooted(g, 80, NodeId(0));
        let (out, _) = run_sync(&mut world);
        assert!(
            envelope::memory_logarithmic(&out, 30.0),
            "peak {} bits is not O(log(k+Δ))",
            out.peak_memory_bits
        );
    }

    #[test]
    fn rides_are_charged_like_individual_moves() {
        // On a rooted line, the agent settling at distance d must have been
        // charged exactly d moves for the ride (plus any probe trips), and
        // the total is Θ(k²)/2-ish — the cohort compression must not change
        // the accounting.
        let k = 24;
        let g = generators::line(k);
        let mut world = World::new_rooted(g, k, NodeId(0));
        let (out, _) = run_sync(&mut world);
        let lower = (k * (k - 1) / 2) as u64;
        assert!(
            out.total_moves >= lower,
            "total_moves {} below the ride sum {lower}",
            out.total_moves
        );
        assert!(out.max_moves_per_agent >= (k as u64) - 1);
    }

    #[test]
    fn beats_scan_baseline_on_the_complete_graph() {
        // The separating instance for probing vs scanning is a dense graph:
        // on K_k the scan baseline pays Θ(k²) (each new node re-examines the
        // already-settled neighbors one at a time) while doubling probes pay
        // O(k log k). The star is *not* separating — there every scan hits an
        // empty leaf immediately — which is exactly the `min{m, kΔ}` shape
        // the paper's Table 1 describes.
        let k = 40;
        let g = generators::complete(k);
        let mut probe_world = World::new_rooted(g.clone(), k, NodeId(0));
        let (probe_out, _) = run_sync(&mut probe_world);
        let mut scan_world = World::new_rooted(g, k, NodeId(0));
        let mut scan = crate::KsDfs::new(&scan_world);
        let scan_out = SyncRunner::new(RunConfig::default())
            .run(&mut scan_world, &mut scan)
            .unwrap();
        assert!(
            (probe_out.rounds as f64) < 0.7 * scan_out.rounds as f64,
            "probe {} rounds should clearly beat scan {} rounds on K_{k}",
            probe_out.rounds,
            scan_out.rounds
        );
        assert!(envelope::within_k_log_k(&probe_out, 30.0));
    }

    #[test]
    #[should_panic(expected = "rooted")]
    fn rejects_non_rooted_start() {
        let g = generators::line(6);
        let world = World::new(g, vec![NodeId(0), NodeId(3)]);
        let _ = ProbeDfs::new(&world);
    }
}
