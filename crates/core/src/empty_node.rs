//! `Empty_Node_Selection()` — Algorithm 1 of the paper and Lemma 1.
//!
//! The SYNC technique keeps ≥ ⌈k/3⌉ nodes of the (monotonically growing) DFS
//! tree empty so that ⌈k/3⌉ *seeker* agents remain available for `O(1)`-round
//! synchronous probing until the DFS finishes. This module implements the
//! selection rule on explicit trees — both the centralized form of
//! Algorithm 1 and the incremental form used while a DFS tree grows — and
//! checks Lemma 1 (at least ⌈k/3⌉ empty nodes) plus the coverage property
//! needed by Lemmas 2–3 (every empty node is covered by a settler within two
//! hops, with ≤ 3 covered children or ≤ 2 covered siblings per coverer).

use std::collections::HashMap;

/// A rooted tree given by parent pointers (`parent[root] == usize::MAX`).
///
/// This is an *analysis* structure (used by the selection algorithm, its
/// tests and the ablation benches), not something agents store — agents only
/// ever hold the `O(log(k+Δ))`-bit fragments of it described in the paper.
#[derive(Debug, Clone)]
pub struct Tree {
    parent: Vec<usize>,
    children: Vec<Vec<usize>>,
    depth: Vec<usize>,
    root: usize,
}

impl Tree {
    /// Build a tree from parent pointers. `parent[i] == usize::MAX` marks the
    /// root (exactly one node must be the root, and every node must reach it).
    pub fn from_parents(parent: Vec<usize>) -> Self {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        let mut root = usize::MAX;
        for (i, &p) in parent.iter().enumerate() {
            if p == usize::MAX {
                assert_eq!(root, usize::MAX, "tree must have exactly one root");
                root = i;
            } else {
                assert!(p < n, "parent index out of range");
                children[p].push(i);
            }
        }
        assert_ne!(root, usize::MAX, "tree must have a root");
        // Depths via BFS from the root.
        let mut depth = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        depth[root] = 0;
        queue.push_back(root);
        let mut seen = 1;
        while let Some(v) = queue.pop_front() {
            for &c in &children[v] {
                depth[c] = depth[v] + 1;
                seen += 1;
                queue.push_back(c);
            }
        }
        assert_eq!(seen, n, "every node must be reachable from the root");
        Tree {
            parent,
            children,
            depth,
            root,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty (it never is — kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Depth of `v` (root = 0).
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v]
    }

    /// Children of `v` in insertion order (the DFS attaches children in the
    /// order it discovers them, which is the order Algorithm 1 groups them).
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: usize) -> Option<usize> {
        let p = self.parent[v];
        (p != usize::MAX).then_some(p)
    }

    /// Whether `v` is a leaf.
    pub fn is_leaf(&self, v: usize) -> bool {
        self.children[v].is_empty()
    }
}

/// Who covers an empty node (Lemmas 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverer {
    /// Covered by the settler at its parent (Case I oscillation: the parent
    /// visits up to 3 empty children).
    Parent(usize),
    /// Covered by the settler at a sibling (Case II oscillation: the sibling
    /// goes up to the shared parent and visits up to 2 empty siblings).
    Sibling(usize),
}

/// Output of the selection: which nodes keep a settler, and how each empty
/// node is covered.
#[derive(Debug, Clone)]
pub struct Selection {
    /// `settled[v]` — whether node `v` keeps a settler.
    pub settled: Vec<bool>,
    /// For every empty node, the covering settler.
    pub coverage: HashMap<usize, Coverer>,
}

impl Selection {
    /// Number of empty (unsettled) nodes.
    pub fn num_empty(&self) -> usize {
        self.settled.iter().filter(|&&s| !s).count()
    }

    /// Number of settled nodes.
    pub fn num_settled(&self) -> usize {
        self.settled.iter().filter(|&&s| s).count()
    }
}

/// Algorithm 1, centralized form: settle agents on the nodes of `tree` so
/// that at most ⌊2k/3⌋ nodes are settled and at least ⌈k/3⌉ are left empty
/// (Lemma 1, for k ≥ 3), with every empty node covered per Lemmas 2–3.
///
/// Rules (matching the paper):
/// * nodes at even depth get a settler, nodes at odd depth are left empty;
/// * **Case A** — among the *leaf* children of an odd-depth (empty) node,
///   only every third one (the 1st, 4th, 7th, …) keeps its settler; each
///   kept one covers the following ≤ 2 removed leaf siblings;
/// * **Case B** — an even-depth node with more than 3 (odd-depth, empty)
///   children gets extra settlers on its 4th, 7th, … children; each covers
///   the following ≤ 2 empty siblings, while the node's own settler covers
///   the first 3.
pub fn empty_node_selection(tree: &Tree) -> Selection {
    let n = tree.len();
    let mut settled = vec![false; n];
    let mut coverage: HashMap<usize, Coverer> = HashMap::new();

    // Step 1: settle every even-depth node.
    for (v, slot) in settled.iter_mut().enumerate() {
        *slot = tree.depth(v).is_multiple_of(2);
    }

    // Step 2, Case B: even-depth nodes with many (empty) children put extra
    // settlers on children 4, 7, 10, …; assign coverage for the rest.
    for v in 0..n {
        if !tree.depth(v).is_multiple_of(2) {
            continue;
        }
        for (idx, &c) in tree.children(v).iter().enumerate() {
            let pos = idx + 1; // 1-based child position
            if pos <= 3 {
                coverage.insert(c, Coverer::Parent(v));
            } else if pos % 3 == 1 {
                settled[c] = true;
                coverage.remove(&c);
            } else {
                // Covered by the most recent kept sibling (position 4, 7, …).
                let kept_pos = pos - ((pos - 1) % 3);
                let kept = tree.children(v)[kept_pos - 1];
                coverage.insert(c, Coverer::Sibling(kept));
            }
        }
    }

    // Step 3, Case A: odd-depth (empty) nodes whose children include leaves —
    // those leaf children all start settled (even depth); keep only every
    // third, the kept one covers the next ≤ 2.
    for v in 0..n {
        if tree.depth(v).is_multiple_of(2) {
            continue;
        }
        let leaf_children: Vec<usize> = tree
            .children(v)
            .iter()
            .copied()
            .filter(|&c| tree.is_leaf(c))
            .collect();
        for (idx, &c) in leaf_children.iter().enumerate() {
            let pos = idx + 1;
            if pos % 3 == 1 {
                // keeps its settler; covers the next two leaf siblings
            } else {
                settled[c] = false;
                let kept_pos = pos - ((pos - 1) % 3);
                let kept = leaf_children[kept_pos - 1];
                coverage.insert(c, Coverer::Sibling(kept));
            }
        }
    }

    Selection { settled, coverage }
}

/// Check Lemma 1: for trees of size `k ≥ 3`, at least ⌈k/3⌉ nodes are empty.
pub fn satisfies_lemma1(tree: &Tree, sel: &Selection) -> bool {
    let k = tree.len();
    if k < 3 {
        return true;
    }
    sel.num_empty() >= k.div_ceil(3)
}

/// Check the coverage structure required by Lemmas 2–3:
/// * every empty node has a coverer, and the coverer is settled;
/// * a `Parent` coverer is the node's tree parent; a `Sibling` coverer shares
///   the node's parent;
/// * no coverer covers more than 3 children or more than 2 siblings (so every
///   oscillation trip finishes within 6 rounds — Lemma 2).
pub fn check_coverage(tree: &Tree, sel: &Selection) -> Result<(), String> {
    let mut parent_load: HashMap<usize, usize> = HashMap::new();
    let mut sibling_load: HashMap<usize, usize> = HashMap::new();
    for v in 0..tree.len() {
        if sel.settled[v] {
            continue;
        }
        let Some(&coverer) = sel.coverage.get(&v) else {
            return Err(format!("empty node {v} has no coverer"));
        };
        match coverer {
            Coverer::Parent(p) => {
                if tree.parent(v) != Some(p) {
                    return Err(format!("node {v}: parent-coverer {p} is not its parent"));
                }
                if !sel.settled[p] {
                    return Err(format!("node {v}: parent-coverer {p} is not settled"));
                }
                *parent_load.entry(p).or_default() += 1;
            }
            Coverer::Sibling(s) => {
                if tree.parent(v) != tree.parent(s) || v == s {
                    return Err(format!("node {v}: sibling-coverer {s} is not a sibling"));
                }
                if !sel.settled[s] {
                    return Err(format!("node {v}: sibling-coverer {s} is not settled"));
                }
                *sibling_load.entry(s).or_default() += 1;
            }
        }
    }
    for (p, load) in parent_load {
        if load > 3 {
            return Err(format!("parent-coverer {p} covers {load} > 3 children"));
        }
    }
    for (s, load) in sibling_load {
        if load > 2 {
            return Err(format!("sibling-coverer {s} covers {load} > 2 siblings"));
        }
    }
    Ok(())
}

/// Build a [`Tree`] from a random attachment process — a convenient source of
/// arbitrary tree shapes for tests and benches. Deterministic per seed.
pub fn random_attachment_tree(k: usize, seed: u64) -> Tree {
    assert!(k >= 1);
    let mut parent = vec![usize::MAX; k];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for (v, p) in parent.iter_mut().enumerate().skip(1) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *p = (state % v as u64) as usize;
    }
    Tree::from_parents(parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_rng::prelude::*;

    fn line_tree(k: usize) -> Tree {
        let parent: Vec<usize> = (0..k)
            .map(|i| if i == 0 { usize::MAX } else { i - 1 })
            .collect();
        Tree::from_parents(parent)
    }

    fn star_tree(k: usize) -> Tree {
        let parent: Vec<usize> = (0..k)
            .map(|i| if i == 0 { usize::MAX } else { 0 })
            .collect();
        Tree::from_parents(parent)
    }

    #[test]
    fn line_selection_settles_even_depths_only() {
        let t = line_tree(9);
        let sel = empty_node_selection(&t);
        for v in 0..9 {
            assert_eq!(sel.settled[v], v % 2 == 0);
        }
        assert!(satisfies_lemma1(&t, &sel));
        check_coverage(&t, &sel).unwrap();
    }

    #[test]
    fn line_of_three_matches_lemma1_base_case() {
        let t = line_tree(3);
        let sel = empty_node_selection(&t);
        assert_eq!(sel.num_empty(), 1);
        assert!(satisfies_lemma1(&t, &sel));
    }

    #[test]
    fn star_selection_keeps_every_third_leaf() {
        // All children of the root are leaves at depth 1 (odd) — Case B first
        // settles children 4, 7, …; Case A then thins the *leaf* children.
        let t = star_tree(13);
        let sel = empty_node_selection(&t);
        assert!(satisfies_lemma1(&t, &sel), "{sel:?}");
        check_coverage(&t, &sel).unwrap();
        // The root plus at most ⌊2k/3⌋ - 1 children are settled.
        assert!(sel.num_settled() <= 2 * 13 / 3);
    }

    #[test]
    fn binary_tree_selection() {
        // Heap-shaped binary tree on 31 nodes.
        let parent: Vec<usize> = (0..31)
            .map(|i| if i == 0 { usize::MAX } else { (i - 1) / 2 })
            .collect();
        let t = Tree::from_parents(parent);
        let sel = empty_node_selection(&t);
        assert!(satisfies_lemma1(&t, &sel));
        check_coverage(&t, &sel).unwrap();
    }

    #[test]
    fn coverage_groups_respect_oscillation_limits() {
        for seed in 0..20 {
            let t = random_attachment_tree(60, seed);
            let sel = empty_node_selection(&t);
            check_coverage(&t, &sel).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn tiny_trees_do_not_panic() {
        for k in 1..=4 {
            let t = line_tree(k);
            let sel = empty_node_selection(&t);
            assert_eq!(sel.num_empty() + sel.num_settled(), k);
            check_coverage(&t, &sel).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn two_roots_rejected() {
        let _ = Tree::from_parents(vec![usize::MAX, usize::MAX, 0]);
    }

    /// Lemma 1 on arbitrary random trees: ≥ ⌈k/3⌉ empty nodes for k ≥ 3.
    #[test]
    fn lemma1_holds_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(0x1E44_A001);
        for _ in 0..128 {
            let k = rng.random_range(3..300usize);
            let seed = rng.random_range(0..10_000u64);
            let t = random_attachment_tree(k, seed);
            let sel = empty_node_selection(&t);
            assert!(
                satisfies_lemma1(&t, &sel),
                "k={}, seed={}, empty={}, settled={}",
                k,
                seed,
                sel.num_empty(),
                sel.num_settled()
            );
        }
    }

    /// Lemmas 2–3 structure on arbitrary random trees.
    #[test]
    fn coverage_holds_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(0x1E44_A002);
        for _ in 0..128 {
            let k = rng.random_range(1..300usize);
            let seed = rng.random_range(0..10_000u64);
            let t = random_attachment_tree(k, seed);
            let sel = empty_node_selection(&t);
            assert!(check_coverage(&t, &sel).is_ok(), "k={k}, seed={seed}");
        }
    }

    /// Selection is deterministic and total: every node is either settled
    /// or covered.
    #[test]
    fn selection_is_total() {
        let mut rng = StdRng::seed_from_u64(0x1E44_A003);
        for _ in 0..128 {
            let k = rng.random_range(1..200usize);
            let seed = rng.random_range(0..10_000u64);
            let t = random_attachment_tree(k, seed);
            let sel = empty_node_selection(&t);
            for v in 0..k {
                assert!(
                    sel.settled[v] || sel.coverage.contains_key(&v),
                    "k={k}, seed={seed}, node {v}"
                );
            }
        }
    }
}
