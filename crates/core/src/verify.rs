//! Verification of dispersion configurations and complexity envelopes.

use disp_graph::NodeId;
use disp_sim::{AgentId, Outcome, World};

/// A violation of the dispersion requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispersionViolation {
    /// Two (or more) agents ended on the same node.
    Collision {
        /// The node hosting more than one agent.
        node: NodeId,
        /// The agents on it.
        agents: Vec<AgentId>,
    },
}

impl std::fmt::Display for DispersionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispersionViolation::Collision { node, agents } => {
                write!(f, "node {node} hosts {} agents: {:?}", agents.len(), agents)
            }
        }
    }
}

impl std::error::Error for DispersionViolation {}

/// Check that the world is in a *dispersion configuration*: every agent is on
/// a distinct node.
///
/// Runs in `O(k log k)` time and `O(k)` memory (a sort, no hash map), so it
/// is cheap enough to call after every million-agent campaign trial.
pub fn check_dispersion(world: &World) -> Result<(), DispersionViolation> {
    let mut sorted = world.snapshot_positions();
    sorted.sort_unstable();
    let Some(window) = sorted.windows(2).find(|w| w[0] == w[1]) else {
        return Ok(());
    };
    // Slow path only on violation: gather every agent on the colliding node.
    let node = window[0];
    let agents: Vec<AgentId> = (0..world.num_agents() as u32)
        .map(AgentId)
        .filter(|&a| world.position(a) == node)
        .collect();
    Err(DispersionViolation::Collision { node, agents })
}

/// `true` iff every agent is on a distinct node.
pub fn is_dispersed(world: &World) -> bool {
    check_dispersion(world).is_ok()
}

/// Convenience assertions about the measured complexity of an [`Outcome`],
/// used by tests and the experiment harness to check the *shape* of the
/// bounds (constants are generous because the simulator charges extra rounds
/// for the leader/follower coordination that the paper's idealized counting
/// does not).
pub mod envelope {
    use super::Outcome;

    /// `time ≤ factor · k` (the `O(k)` envelope).
    pub fn within_linear(outcome: &Outcome, factor: f64) -> bool {
        (outcome.time() as f64) <= factor * outcome.k as f64 + factor
    }

    /// `time ≤ factor · k·log₂(k+2)` (the `O(k log k)` envelope).
    pub fn within_k_log_k(outcome: &Outcome, factor: f64) -> bool {
        let k = outcome.k as f64;
        (outcome.time() as f64) <= factor * k * (k + 2.0).log2() + factor
    }

    /// `time ≤ factor · min{m, k·Δ}` (the `O(min{m, kΔ})` envelope).
    pub fn within_min_m_k_delta(outcome: &Outcome, factor: f64) -> bool {
        let bound = (outcome.m as f64).min(outcome.k as f64 * outcome.max_degree as f64);
        (outcome.time() as f64) <= factor * bound + factor
    }

    /// `peak memory ≤ factor · log₂(k + Δ + 2)` bits (the `O(log(k+Δ))`
    /// envelope).
    pub fn memory_logarithmic(outcome: &Outcome, factor: f64) -> bool {
        let bound = ((outcome.k + outcome.max_degree) as f64 + 2.0).log2();
        (outcome.peak_memory_bits as f64) <= factor * bound + factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_graph::generators;
    use disp_sim::World;

    #[test]
    fn distinct_positions_pass() {
        let g = generators::line(5);
        let w = World::new(g, vec![NodeId(0), NodeId(2), NodeId(4)]);
        assert!(is_dispersed(&w));
        assert!(check_dispersion(&w).is_ok());
    }

    #[test]
    fn collision_is_reported_with_all_agents() {
        let g = generators::line(5);
        let w = World::new(g, vec![NodeId(1), NodeId(3), NodeId(1)]);
        let err = check_dispersion(&w).unwrap_err();
        match err {
            DispersionViolation::Collision { node, agents } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(agents, vec![AgentId(0), AgentId(2)]);
            }
        }
        assert!(!is_dispersed(&w));
    }

    #[test]
    fn envelope_checks() {
        let out = Outcome {
            rounds: 100,
            steps: 0,
            epochs: 100,
            activations: 0,
            total_moves: 0,
            max_moves_per_agent: 0,
            peak_memory_bits: 20,
            terminated: true,
            k: 50,
            n: 100,
            m: 200,
            max_degree: 10,
        };
        assert!(envelope::within_linear(&out, 3.0));
        assert!(!envelope::within_linear(&out, 1.0));
        assert!(envelope::within_k_log_k(&out, 1.0));
        assert!(envelope::within_min_m_k_delta(&out, 1.0));
        assert!(envelope::memory_logarithmic(&out, 4.0));
        assert!(!envelope::memory_logarithmic(&out, 1.0));
    }
}
