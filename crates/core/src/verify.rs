//! Verification of dispersion configurations and complexity envelopes.

use disp_graph::NodeId;
use disp_sim::{AgentId, Outcome, World};

/// A violation of the dispersion requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispersionViolation {
    /// Two (or more) agents ended on the same node.
    Collision {
        /// The node hosting more than one agent.
        node: NodeId,
        /// The agents on it.
        agents: Vec<AgentId>,
    },
    /// Two settled agents are closer than the required pairwise distance
    /// (the distance-k dispersion predicate of arXiv 2408.12220).
    TooClose {
        /// One endpoint of the closest pair.
        a: AgentId,
        /// The other endpoint.
        b: AgentId,
        /// Their distance in the base topology.
        distance: u64,
        /// The minimum the scenario demanded.
        required: u64,
    },
}

impl std::fmt::Display for DispersionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispersionViolation::Collision { node, agents } => {
                write!(f, "node {node} hosts {} agents: {:?}", agents.len(), agents)
            }
            DispersionViolation::TooClose {
                a,
                b,
                distance,
                required,
            } => write!(
                f,
                "agents {a} and {b} are at distance {distance} < required {required}"
            ),
        }
    }
}

impl std::error::Error for DispersionViolation {}

/// Whether `agent` counts for the dispersion predicate. Crashed agents
/// normally do not (their corpse frees the node). Under the
/// `inject-orphan` test-of-the-test feature they *do* keep counting — the
/// deliberate bug the invariant harness must catch when a survivor
/// re-settles the orphaned node.
fn counts(world: &World, agent: AgentId) -> bool {
    #[cfg(feature = "inject-orphan")]
    {
        let _ = (world, agent);
        true
    }
    #[cfg(not(feature = "inject-orphan"))]
    {
        !world.is_dead(agent)
    }
}

/// Check that the world is in a *dispersion configuration*: every surviving
/// agent is on a distinct node (crashed agents are ghosts — their last node
/// counts as free).
///
/// Runs in `O(k log k)` time and `O(k)` memory (a sort, no hash map), so it
/// is cheap enough to call after every million-agent campaign trial.
pub fn check_dispersion(world: &World) -> Result<(), DispersionViolation> {
    let mut sorted: Vec<NodeId> = (0..world.num_agents() as u32)
        .map(AgentId)
        .filter(|&a| counts(world, a))
        .map(|a| world.position(a))
        .collect();
    sorted.sort_unstable();
    let Some(window) = sorted.windows(2).find(|w| w[0] == w[1]) else {
        return Ok(());
    };
    // Slow path only on violation: gather every agent on the colliding node.
    let node = window[0];
    let agents: Vec<AgentId> = (0..world.num_agents() as u32)
        .map(AgentId)
        .filter(|&a| counts(world, a) && world.position(a) == node)
        .collect();
    Err(DispersionViolation::Collision { node, agents })
}

/// `true` iff every surviving agent is on a distinct node.
pub fn is_dispersed(world: &World) -> bool {
    check_dispersion(world).is_ok()
}

/// Check the **distance-k dispersion** predicate: surviving agents sit on
/// distinct nodes *and* every pair is at base-topology distance
/// `≥ min_distance`. `min_distance ≤ 1` degenerates to the plain
/// [`check_dispersion`] sort (no BFS is run).
///
/// Distances are measured in the *base* topology (not the current live
/// world): the dynamic adversary's missing edge changes every round, so the
/// stable base metric is the meaningful one — and it is also the stricter
/// reading, since removing edges only ever lengthens distances.
///
/// The pairwise check is one multi-source BFS with nearest-source labels
/// (`O(n + m)` time, `O(n)` memory): the closest pair of sources realizes
/// its distance as `dist[u] + dist[v] + 1` over some edge `(u, v)` whose
/// endpoints are claimed by different sources.
pub fn check_dispersion_at(world: &World, min_distance: u64) -> Result<(), DispersionViolation> {
    check_dispersion(world)?;
    if min_distance <= 1 {
        return Ok(());
    }
    let Some((a, b, distance)) = closest_settled_pair(world) else {
        return Ok(()); // fewer than two counted agents
    };
    if distance < min_distance {
        return Err(DispersionViolation::TooClose {
            a,
            b,
            distance,
            required: min_distance,
        });
    }
    Ok(())
}

/// `true` iff the world satisfies distance-`min_distance` dispersion.
pub fn is_dispersed_at(world: &World, min_distance: u64) -> bool {
    check_dispersion_at(world, min_distance).is_ok()
}

/// The closest pair of counted agents and their base-topology distance, or
/// `None` with fewer than two counted agents. Assumes distinct positions
/// (call after [`check_dispersion`]).
fn closest_settled_pair(world: &World) -> Option<(AgentId, AgentId, u64)> {
    let topo = world.graph();
    let n = topo.num_nodes();
    const UNSEEN: u32 = u32::MAX;
    let mut dist: Vec<u64> = vec![u64::MAX; n];
    let mut label: Vec<u32> = vec![UNSEEN; n];
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    let mut sources = 0u32;
    for i in 0..world.num_agents() as u32 {
        let agent = AgentId(i);
        if !counts(world, agent) {
            continue;
        }
        let v = world.position(agent);
        dist[v.index()] = 0;
        label[v.index()] = i;
        queue.push_back(v);
        sources += 1;
    }
    if sources < 2 {
        return None;
    }
    while let Some(v) = queue.pop_front() {
        for p in topo.ports(v) {
            let (u, _) = topo.traverse(v, p);
            if label[u.index()] == UNSEEN {
                dist[u.index()] = dist[v.index()] + 1;
                label[u.index()] = label[v.index()];
                queue.push_back(u);
            }
        }
    }
    // The closest source pair is realized across some edge whose endpoints
    // belong to different BFS regions.
    let mut best: Option<(AgentId, AgentId, u64)> = None;
    for v in topo.nodes() {
        for p in topo.ports(v) {
            let (u, _) = topo.traverse(v, p);
            if label[v.index()] == label[u.index()] {
                continue;
            }
            let d = dist[v.index()] + dist[u.index()] + 1;
            if best.is_none_or(|(_, _, cur)| d < cur) {
                let (mut a, mut b) = (label[v.index()], label[u.index()]);
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                best = Some((AgentId(a), AgentId(b), d));
            }
        }
    }
    best
}

/// Convenience assertions about the measured complexity of an [`Outcome`],
/// used by tests and the experiment harness to check the *shape* of the
/// bounds (constants are generous because the simulator charges extra rounds
/// for the leader/follower coordination that the paper's idealized counting
/// does not).
pub mod envelope {
    use super::Outcome;

    /// `time ≤ factor · k` (the `O(k)` envelope).
    pub fn within_linear(outcome: &Outcome, factor: f64) -> bool {
        (outcome.time() as f64) <= factor * outcome.k as f64 + factor
    }

    /// `time ≤ factor · k·log₂(k+2)` (the `O(k log k)` envelope).
    pub fn within_k_log_k(outcome: &Outcome, factor: f64) -> bool {
        let k = outcome.k as f64;
        (outcome.time() as f64) <= factor * k * (k + 2.0).log2() + factor
    }

    /// `time ≤ factor · min{m, k·Δ}` (the `O(min{m, kΔ})` envelope).
    pub fn within_min_m_k_delta(outcome: &Outcome, factor: f64) -> bool {
        let bound = (outcome.m as f64).min(outcome.k as f64 * outcome.max_degree as f64);
        (outcome.time() as f64) <= factor * bound + factor
    }

    /// `peak memory ≤ factor · log₂(k + Δ + 2)` bits (the `O(log(k+Δ))`
    /// envelope).
    pub fn memory_logarithmic(outcome: &Outcome, factor: f64) -> bool {
        let bound = ((outcome.k + outcome.max_degree) as f64 + 2.0).log2();
        (outcome.peak_memory_bits as f64) <= factor * bound + factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_graph::generators;
    use disp_sim::World;

    #[test]
    fn distinct_positions_pass() {
        let g = generators::line(5);
        let w = World::new(g, vec![NodeId(0), NodeId(2), NodeId(4)]);
        assert!(is_dispersed(&w));
        assert!(check_dispersion(&w).is_ok());
    }

    #[test]
    fn collision_is_reported_with_all_agents() {
        let g = generators::line(5);
        let w = World::new(g, vec![NodeId(1), NodeId(3), NodeId(1)]);
        let err = check_dispersion(&w).unwrap_err();
        match err {
            DispersionViolation::Collision { node, agents } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(agents, vec![AgentId(0), AgentId(2)]);
            }
            other => panic!("expected Collision, got {other:?}"),
        }
        assert!(!is_dispersed(&w));
    }

    #[test]
    fn crashed_agents_free_their_nodes() {
        let g = generators::line(5);
        let mut w = World::new(g, vec![NodeId(1), NodeId(3), NodeId(1)]);
        // Agents 0 and 2 collide on node 1 — until one of them crashes.
        assert!(!is_dispersed(&w));
        w.crash(AgentId(2));
        #[cfg(not(feature = "inject-orphan"))]
        assert!(is_dispersed(&w), "the corpse must not count");
        #[cfg(feature = "inject-orphan")]
        assert!(!is_dispersed(&w), "inject-orphan keeps counting the corpse");
    }

    #[test]
    fn distance_k_accepts_spaced_and_rejects_adjacent_pairs() {
        let g = generators::ring(12);
        // Distance-3 spacing: 0, 3, 6, 9.
        let w = World::new(g.clone(), vec![NodeId(0), NodeId(3), NodeId(6), NodeId(9)]);
        assert!(is_dispersed_at(&w, 1));
        assert!(is_dispersed_at(&w, 2));
        assert!(is_dispersed_at(&w, 3));
        assert!(!is_dispersed_at(&w, 4));
        // Puncture the spacing: move one agent next to another.
        let w = World::new(g, vec![NodeId(0), NodeId(1), NodeId(6), NodeId(9)]);
        let err = check_dispersion_at(&w, 2).unwrap_err();
        match err {
            DispersionViolation::TooClose {
                a,
                b,
                distance,
                required,
            } => {
                assert_eq!((a, b), (AgentId(0), AgentId(1)));
                assert_eq!(distance, 1);
                assert_eq!(required, 2);
            }
            other => panic!("expected TooClose, got {other:?}"),
        }
    }

    #[test]
    fn distance_k_wraps_around_the_ring() {
        // 0 and 10 look far apart by index but are 2 apart around the seam.
        let g = generators::ring(12);
        let w = World::new(g, vec![NodeId(0), NodeId(10)]);
        assert!(is_dispersed_at(&w, 2));
        assert!(!is_dispersed_at(&w, 3));
    }

    #[test]
    fn distance_k_collisions_still_report_as_collisions() {
        let g = generators::ring(8);
        let w = World::new(g, vec![NodeId(2), NodeId(2)]);
        assert!(matches!(
            check_dispersion_at(&w, 3),
            Err(DispersionViolation::Collision { .. })
        ));
    }

    #[test]
    fn distance_k_degenerates_gracefully() {
        let g = generators::ring(8);
        // A single agent satisfies any distance requirement.
        let w = World::new(g.clone(), vec![NodeId(5)]);
        assert!(is_dispersed_at(&w, 100));
        // d = 1 is exactly plain dispersion (no BFS).
        let w = World::new(g, vec![NodeId(0), NodeId(1)]);
        assert!(is_dispersed_at(&w, 1));
    }

    #[test]
    fn envelope_checks() {
        let out = Outcome {
            rounds: 100,
            steps: 0,
            epochs: 100,
            activations: 0,
            total_moves: 0,
            max_moves_per_agent: 0,
            peak_memory_bits: 20,
            terminated: true,
            k: 50,
            n: 100,
            m: 200,
            max_degree: 10,
        };
        assert!(envelope::within_linear(&out, 3.0));
        assert!(!envelope::within_linear(&out, 1.0));
        assert!(envelope::within_k_log_k(&out, 1.0));
        assert!(envelope::within_min_m_k_delta(&out, 1.0));
        assert!(envelope::memory_logarithmic(&out, 4.0));
        assert!(!envelope::memory_logarithmic(&out, 1.0));
    }
}
