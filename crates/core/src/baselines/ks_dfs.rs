//! The OPODIS'21-style group-DFS dispersion baseline (`O(min{m, kΔ})` time,
//! `O(log(k+Δ))` bits per agent), usable under both the SYNC and ASYNC
//! schedulers.
//!
//! ## Algorithm
//!
//! All unsettled agents that started on the same node travel together as a
//! *group* led by the largest-ID agent among them. At every node the group
//! visits for the first time, the smallest-ID unsettled member settles and
//! becomes the node's *settler*; the settler stores the port back to its DFS
//! parent and a scan cursor over its remaining ports. The group then examines
//! the settler's ports one at a time: it moves to the neighbor, settles an
//! agent there if the neighbor is free, and otherwise returns and advances
//! the cursor. When a node's ports are exhausted the group backtracks to the
//! parent. The traversal therefore charges `O(1)` group moves per examined
//! edge, i.e. `O(min{m, kΔ})` time overall.
//!
//! ## General initial configurations
//!
//! Multiple groups (one per initially-occupied node) run their DFSs
//! concurrently and treat *any* settled agent — of any group — as an occupied
//! node. This replaces the size-based subsumption of Kshemkalyani–Sharma with
//! a simpler scheme (documented in `DESIGN.md`): if a group exhausts its DFS
//! with members still unsettled (it got boxed into a "pocket" of occupied
//! nodes), the leftover members switch to *scatter mode* — independent seeded
//! random walks that settle on the first free node found. Scatter mode keeps
//! the algorithm correct on every input; its time is measured empirically
//! rather than bounded analytically.
//!
//! ## Group movement protocol
//!
//! The leader never outruns its followers: it publishes a move order (a port
//! plus a flip bit), waits until every follower has executed it and left the
//! node, and only then moves itself. This costs a small constant factor over
//! the paper's idealized counting and works identically under asynchronous
//! activation.
//!
//! ## Structure-of-arrays state (DESIGN.md §13)
//!
//! Per-agent state is a `u8` tag (role × stage, the follower's `executed`
//! bit folded in — see the private `tag` module) plus packed parallel fields. Unlike the
//! rooted protocols this baseline has one leader *per group*, so leader
//! payload stays per-agent: `p0` = published order port (`Port(0)` = no
//! order yet), `p3` = the order's flip bit (`Port(1)`/`Port(0)`), `p1` =
//! return port, `p2` = arrival pin, `aux0` = group size, `aux1` = tree
//! label. Followers keep their leader's id in `aux0`; settlers keep the
//! parent port in `p0`, the scan cursor in `aux0` and the tree label in
//! `aux1`; scatter walkers keep their 64-bit xorshift state split across
//! `aux0`/`aux1`. A `node → settler` cache replaces the per-activation
//! co-location scans for "does this node host a settler" (settlers never
//! move). The `tests/soa_differential.rs` suite pins this rewrite
//! step-for-step to the retained enum-of-structs reference.

use crate::verify;
use disp_graph::Port;
use disp_sim::{bits, ActivationCtx, AgentId, AgentProtocol, World};

const NO_SETTLER: u32 = u32::MAX;
/// The `Option<Port>` sentinel: ports are 1-based, so `Port(0)` is free.
const NO_PORT: Port = Port(0);

#[inline]
fn opt(p: Port) -> Option<Port> {
    (p != NO_PORT).then_some(p)
}

#[inline]
fn enc(p: Option<Port>) -> Port {
    p.unwrap_or(NO_PORT)
}

/// The flattened role × stage tag (`_F`/`_T` fold the follower's `executed`
/// boolean into the byte).
mod tag {
    /// Follower with `executed == false`. Fields: `aux0` = leader id.
    pub const FOLLOWER_F: u8 = 0;
    /// Follower with `executed == true`.
    pub const FOLLOWER_T: u8 = 1;
    /// Settled. Fields: `p0` = parent port (opt), `aux0` = scan cursor,
    /// `aux1` = tree label.
    pub const SETTLED: u8 = 2;
    /// Scatter walker. Fields: `aux0`/`aux1` = xorshift state halves.
    pub const SCATTER: u8 = 3;

    // Leader phases (fields: `p0` = order port (opt), `p3` = order flip
    // bit, `p1` = return port (opt), `p2` = arrival pin (opt), `aux0` =
    // group size, `aux1` = tree label).
    pub const LEAD_DECIDE: u8 = 4;
    pub const LEAD_DEPART_SCAN: u8 = 5;
    pub const LEAD_DEPART_RETURN: u8 = 6;
    pub const LEAD_DEPART_BACKTRACK: u8 = 7;
    pub const LEAD_CHECK_NEIGHBOR: u8 = 8;
}

/// Number of memory classes (coarse roles with a fixed bit footprint):
/// follower, settled, scatter, leader.
const CLASSES: usize = 4;

/// Class names in [`class`] index order, for the flight recorder's
/// per-role histogram ([`AgentProtocol::class_counts`]). The settled class
/// must be named exactly `"settled"` — the recorder keys on it.
const CLASS_NAMES: [&str; CLASSES] = ["follower", "settled", "scatter", "leader"];

/// The memory class of a tag — the coarse role.
#[inline]
fn class(t: u8) -> usize {
    match t {
        tag::FOLLOWER_F | tag::FOLLOWER_T => 0,
        tag::SETTLED => 1,
        tag::SCATTER => 2,
        _ => 3,
    }
}

/// Per-class footprint in bits (the same accounting the pre-SoA enum
/// variants used).
fn class_bits_table(k: usize, max_degree: usize) -> [usize; CLASSES] {
    let id = bits::id_bits(k);
    let port = bits::port_bits(max_degree);
    let opt_port = bits::opt_port_bits(max_degree);
    [
        // follower: own id + leader id + executed flag
        id + id + bits::flag_bits(),
        // settled: id + parent + cursor + treelabel
        id + opt_port + port + 1 + id,
        // scatter: id + xorshift state
        id + 64,
        // leader: phase tag + group size counter + order (flag+port) +
        // return/arrival ports + treelabel + own id.
        id + 3 + bits::counter_bits(k as u64) + bits::flag_bits() + opt_port + 2 * opt_port + id,
    ]
}

/// The group-DFS baseline protocol (rooted and general configurations),
/// structure-of-arrays layout.
#[derive(Debug)]
pub struct KsDfs {
    /// Role × stage per agent — the dispatch byte (see [`tag`]).
    tags: Vec<u8>,
    /// Number of agents per memory class; with `class_bits` this makes
    /// peak-memory sampling `O(1)` instead of an `O(k)` scan.
    class_counts: [u32; CLASSES],
    /// Per-class footprint in bits (a function of `k` and `Δ` only).
    class_bits: [usize; CLASSES],
    /// Packed port fields (`NO_PORT` = none); meaning per role in [`tag`].
    p0: Vec<Port>,
    p1: Vec<Port>,
    p2: Vec<Port>,
    p3: Vec<Port>,
    /// Packed counter / reference fields; meaning per role in [`tag`].
    aux0: Vec<u32>,
    aux1: Vec<u32>,
    k: usize,
    settled_count: usize,
    /// `node → settler agent` cache (settlers never move here).
    settled_at: Vec<u32>,
    scatter_seed: u64,
}

impl KsDfs {
    /// Build the protocol for the given world. One group is formed per
    /// initially-occupied node, led by the largest-ID agent on that node.
    pub fn new(world: &World) -> Self {
        Self::with_seed(world, 0xD15F_ECE5)
    }

    /// Like [`KsDfs::new`] with an explicit seed for the scatter-mode RNG.
    pub fn with_seed(world: &World, scatter_seed: u64) -> Self {
        let k = world.num_agents();
        let mut proto = KsDfs {
            tags: vec![tag::FOLLOWER_F; k],
            class_counts: [0; CLASSES],
            class_bits: class_bits_table(k, world.graph().max_degree()),
            p0: vec![NO_PORT; k],
            p1: vec![NO_PORT; k],
            p2: vec![NO_PORT; k],
            p3: vec![NO_PORT; k],
            aux0: vec![0; k],
            aux1: vec![0; k],
            k,
            settled_count: 0,
            settled_at: vec![NO_SETTLER; world.graph().num_nodes()],
            scatter_seed,
        };
        for v in world.graph().nodes() {
            let mut leader: Option<AgentId> = None;
            let mut count = 0usize;
            for a in world.agents_at(v) {
                count += 1;
                leader = Some(match leader {
                    Some(l) if l >= a => l,
                    _ => a,
                });
            }
            let Some(leader) = leader else { continue };
            for a in world.agents_at(v) {
                let i = a.index();
                if a == leader {
                    proto.tags[i] = tag::LEAD_DECIDE;
                    proto.aux0[i] = count as u32 - 1;
                    proto.aux1[i] = a.0 + 1; // tree label = algorithmic id
                } else {
                    proto.tags[i] = tag::FOLLOWER_F;
                    proto.aux0[i] = leader.0;
                }
            }
        }
        for &t in &proto.tags {
            proto.class_counts[class(t)] += 1;
        }
        proto
    }

    /// The single tag-write point: keeps the per-class counts (and with them
    /// the `O(1)` peak-memory sampling) coherent.
    #[inline]
    fn set_tag(&mut self, i: usize, t: u8) {
        self.class_counts[class(self.tags[i])] -= 1;
        self.class_counts[class(t)] += 1;
        self.tags[i] = t;
    }

    /// Number of settled agents so far.
    pub fn settled_count(&self) -> usize {
        self.settled_count
    }

    /// Whether any agent had to fall back to scatter mode (pocket case).
    pub fn used_scatter_fallback(&self) -> bool {
        self.tags.contains(&tag::SCATTER)
    }

    #[inline]
    fn settler_at(&self, ctx: &ActivationCtx<'_>) -> Option<AgentId> {
        match self.settled_at[ctx.node().index()] {
            NO_SETTLER => None,
            a => Some(AgentId(a)),
        }
    }

    #[inline]
    fn is_follower_of(&self, a: AgentId, leader: AgentId) -> bool {
        self.tags[a.index()] <= tag::FOLLOWER_T && self.aux0[a.index()] == leader.0
    }

    /// Smallest-ID co-located follower of `leader` (unsettled group member).
    fn smallest_follower_here(&self, ctx: &ActivationCtx<'_>, leader: AgentId) -> Option<AgentId> {
        ctx.colocated_iter()
            .filter(|&a| self.is_follower_of(a, leader))
            .min_by_key(|a| a.0)
    }

    fn followers_here(&self, ctx: &ActivationCtx<'_>, leader: AgentId) -> usize {
        ctx.colocated_iter()
            .filter(|&a| self.is_follower_of(a, leader))
            .count()
    }

    /// Settle `agent` and park it: a settled agent's activations are no-ops
    /// forever (its scan cursor is mutated passively by visiting leaders).
    fn settle(
        &mut self,
        ctx: &mut ActivationCtx<'_>,
        agent: AgentId,
        parent_port: Option<Port>,
        treelabel: u32,
    ) {
        let i = agent.index();
        self.set_tag(i, tag::SETTLED);
        self.p0[i] = enc(parent_port);
        self.aux0[i] = 1; // scan cursor starts at port 1
        self.aux1[i] = treelabel;
        self.settled_at[ctx.node().index()] = agent.0;
        self.settled_count += 1;
        ctx.park(agent);
    }

    /// Publish a new group move order (port + toggled flip bit).
    #[inline]
    fn publish_order(&mut self, leader: usize, port: Port) {
        let flip = self.p0[leader] == NO_PORT || self.p3[leader] != Port(1);
        self.p0[leader] = port;
        self.p3[leader] = Port(flip as u32);
    }

    fn act_leader(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        match self.tags[a] {
            tag::LEAD_DECIDE => {
                match self.settler_at(ctx) {
                    None => {
                        // First visit of this node by anyone: settle here.
                        let arrival_pin = opt(self.p2[a]);
                        let treelabel = self.aux1[a];
                        if self.aux0[a] == 0 {
                            // The leader is the last unsettled member.
                            self.settle(ctx, agent, arrival_pin, treelabel);
                            return;
                        }
                        let chosen = self
                            .smallest_follower_here(ctx, agent)
                            .expect("group_size > 0 implies a co-located follower");
                        self.settle(ctx, chosen, arrival_pin, treelabel);
                        self.aux0[a] -= 1;
                        // Stay in Decide: the settler now exists and scanning
                        // starts at the next activation.
                    }
                    Some(settler) => {
                        // Scan the settler's ports. The DFS bookkeeping lives
                        // in the settler (legal: it is co-located).
                        let s = settler.index();
                        let parent_port = opt(self.p0[s]);
                        let mut next_port = self.aux0[s];
                        if self.aux1[s] != self.aux1[a] {
                            // Another group's DFS settled this node before we
                            // could (under ASYNC a foreign scan can reach our
                            // home node before our leader's first
                            // activation). The whole group must fall back
                            // together: scattering only the leader would
                            // strand its followers waiting for orders from a
                            // leader that no longer exists.
                            self.scatter_group(agent, ctx);
                            return;
                        }
                        // Skip the parent port in the scan.
                        if Some(Port(next_port)) == parent_port {
                            next_port += 1;
                        }
                        if next_port as usize > ctx.degree() {
                            // Node exhausted: backtrack, or finish/fallback at
                            // the root.
                            match parent_port {
                                Some(p) => {
                                    self.publish_order(a, p);
                                    self.set_tag(a, tag::LEAD_DEPART_BACKTRACK);
                                }
                                None => {
                                    // Root exhausted with members left: the
                                    // group is boxed in ("pocket"); fall back
                                    // to scatter mode for the remaining
                                    // members (including the leader).
                                    self.scatter_group(agent, ctx);
                                }
                            }
                        } else {
                            // Examine the neighbor behind `next_port`.
                            self.aux0[s] = next_port + 1;
                            self.publish_order(a, Port(next_port));
                            self.set_tag(a, tag::LEAD_DEPART_SCAN);
                        }
                    }
                }
            }

            t @ (tag::LEAD_DEPART_SCAN | tag::LEAD_DEPART_RETURN | tag::LEAD_DEPART_BACKTRACK) => {
                debug_assert_ne!(self.p0[a], NO_PORT, "departing without an order");
                if self.followers_here(ctx, agent) == 0 {
                    // All followers executed the order; follow them.
                    let pin = ctx.move_via(self.p0[a]);
                    self.p2[a] = pin;
                    if t == tag::LEAD_DEPART_SCAN {
                        self.p1[a] = pin;
                        self.set_tag(a, tag::LEAD_CHECK_NEIGHBOR);
                    } else {
                        self.set_tag(a, tag::LEAD_DECIDE);
                    }
                }
                // else: keep waiting for stragglers.
            }

            tag::LEAD_CHECK_NEIGHBOR => {
                let rp = opt(self.p1[a]).expect("checking a neighbor without a return port");
                if self.settler_at(ctx).is_some() {
                    // Occupied: go back and try the next port.
                    self.publish_order(a, rp);
                    self.set_tag(a, tag::LEAD_DEPART_RETURN);
                } else {
                    // Free node: settle here (forward move of the DFS).
                    let treelabel = self.aux1[a];
                    if self.aux0[a] == 0 {
                        self.settle(ctx, agent, Some(rp), treelabel);
                        return;
                    }
                    let chosen = self
                        .smallest_follower_here(ctx, agent)
                        .expect("group_size > 0 implies a co-located follower");
                    self.settle(ctx, chosen, Some(rp), treelabel);
                    self.aux0[a] -= 1;
                    self.set_tag(a, tag::LEAD_DECIDE);
                }
            }

            t => unreachable!("act_leader on non-leader tag {t}"),
        }
    }

    #[inline]
    fn scatter_state(&self, agent: AgentId) -> u64 {
        self.scatter_seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(agent.index() as u64 + 1))
    }

    #[inline]
    fn set_scatter(&mut self, agent: AgentId, rng: u64) {
        let i = agent.index();
        self.set_tag(i, tag::SCATTER);
        self.aux0[i] = rng as u32;
        self.aux1[i] = (rng >> 32) as u32;
    }

    /// Switch the whole co-located group (leader included) to scatter mode.
    fn scatter_group(&mut self, leader: AgentId, ctx: &ActivationCtx<'_>) {
        for a in ctx.colocated_iter() {
            if self.is_follower_of(a, leader) {
                self.set_scatter(a, self.scatter_state(a));
            }
        }
        self.set_scatter(leader, self.scatter_state(leader));
    }

    fn act_follower(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        let leader = AgentId(self.aux0[a]);
        let executed = self.tags[a] == tag::FOLLOWER_T;
        // Execute the leader's published order, if a fresh one is visible.
        if ctx.colocated_iter().any(|peer| peer == leader)
            && self.tags[leader.index()] >= tag::LEAD_DECIDE
            && self.p0[leader.index()] != NO_PORT
        {
            let flip = self.p3[leader.index()] == Port(1);
            if flip != executed {
                ctx.move_via(self.p0[leader.index()]);
                self.set_tag(
                    a,
                    if flip {
                        tag::FOLLOWER_T
                    } else {
                        tag::FOLLOWER_F
                    },
                );
            }
        }
    }

    fn act_scatter(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let a = agent.index();
        // If the current node is free of settlers, settle here (activation
        // order breaks ties between walkers arriving in the same round).
        if self.settler_at(ctx).is_none() {
            self.settle(ctx, agent, None, agent.0 + 1);
            return;
        }
        // Otherwise take a pseudo-random step (xorshift64*).
        let mut rng = (self.aux1[a] as u64) << 32 | self.aux0[a] as u64;
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let d = ctx.degree();
        if d > 0 {
            let port = Port((rng % d as u64) as u32 + 1);
            ctx.move_via(port);
        }
        self.aux0[a] = rng as u32;
        self.aux1[a] = (rng >> 32) as u32;
    }
}

impl AgentProtocol for KsDfs {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        match self.tags[agent.index()] {
            tag::FOLLOWER_F | tag::FOLLOWER_T => self.act_follower(agent, ctx),
            tag::SETTLED => {}
            tag::SCATTER => self.act_scatter(agent, ctx),
            _ => self.act_leader(agent, ctx),
        }
    }

    fn is_terminated(&self) -> bool {
        self.settled_count == self.k
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        self.tags[agent.index()] == tag::SETTLED
    }

    fn memory_bits(&self, agent: AgentId) -> usize {
        self.class_bits[class(self.tags[agent.index()])]
    }

    fn max_memory_bits(&self) -> Option<usize> {
        Some(
            (0..CLASSES)
                .filter(|&c| self.class_counts[c] > 0)
                .map(|c| self.class_bits[c])
                .max()
                .unwrap_or(0),
        )
    }

    fn class_counts(&self, out: &mut Vec<(&'static str, u32)>) {
        for (name, &count) in CLASS_NAMES.iter().zip(&self.class_counts) {
            out.push((name, count));
        }
    }

    fn name(&self) -> &'static str {
        "ks-dfs"
    }
}

/// Convenience: verify the final configuration after a run (panics with a
/// readable message on violation). Tests and the harness call this after the
/// runner finishes.
pub fn assert_dispersed(world: &World) {
    if let Err(v) = verify::check_dispersion(world) {
        panic!("dispersion violated by ks-dfs: {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_dispersion, envelope};
    use disp_graph::{generators, NodeId};
    use disp_sim::{
        AsyncRunner, LaggingAdversary, RandomSubsetAdversary, RoundRobinAdversary, RunConfig,
        SyncRunner,
    };

    fn run_sync(world: &mut World) -> disp_sim::Outcome {
        let mut proto = KsDfs::new(world);
        let out = SyncRunner::new(RunConfig::default())
            .run(world, &mut proto)
            .expect("ks-dfs must terminate");
        check_dispersion(world).expect("ks-dfs must disperse");
        out
    }

    #[test]
    fn rooted_on_line_settles_everyone() {
        let g = generators::line(12);
        let mut world = World::new_rooted(g, 12, NodeId(0));
        let out = run_sync(&mut world);
        assert!(out.terminated);
        assert!(envelope::within_min_m_k_delta(&out, 20.0));
    }

    #[test]
    fn rooted_on_line_from_middle() {
        let g = generators::line(15);
        let mut world = World::new_rooted(g, 15, NodeId(7));
        run_sync(&mut world);
    }

    #[test]
    fn rooted_on_star() {
        let g = generators::star(16);
        let mut world = World::new_rooted(g, 16, NodeId(0));
        let out = run_sync(&mut world);
        assert!(out.rounds > 0);
    }

    #[test]
    fn rooted_on_star_from_leaf() {
        let g = generators::star(16);
        let mut world = World::new_rooted(g, 16, NodeId(3));
        run_sync(&mut world);
    }

    #[test]
    fn rooted_fewer_agents_than_nodes() {
        let g = generators::random_tree(40, 5);
        let mut world = World::new_rooted(g, 17, NodeId(0));
        run_sync(&mut world);
    }

    #[test]
    fn rooted_on_complete_graph() {
        let g = generators::complete(10);
        let mut world = World::new_rooted(g, 10, NodeId(4));
        run_sync(&mut world);
    }

    #[test]
    fn rooted_on_random_graphs_many_seeds() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_connected(30, 0.15, seed);
            let mut world = World::new_rooted(g, 30, NodeId(0));
            run_sync(&mut world);
        }
    }

    #[test]
    fn single_agent_settles_immediately() {
        let g = generators::ring(5);
        let mut world = World::new_rooted(g, 1, NodeId(2));
        let out = run_sync(&mut world);
        assert!(out.rounds <= 2);
        assert_eq!(world.position(AgentId(0)), NodeId(2));
    }

    #[test]
    fn two_agents() {
        let g = generators::line(4);
        let mut world = World::new_rooted(g, 2, NodeId(1));
        run_sync(&mut world);
    }

    #[test]
    fn general_two_groups_on_line() {
        let g = generators::line(10);
        let positions = vec![
            NodeId(0),
            NodeId(0),
            NodeId(0),
            NodeId(9),
            NodeId(9),
            NodeId(9),
        ];
        let mut world = World::new(g, positions);
        run_sync(&mut world);
    }

    #[test]
    fn general_groups_collide_in_middle() {
        // Two large groups from both ends of a short line are forced into the
        // pocket/scatter fallback or tight interleaving; either way the final
        // configuration must be dispersed.
        let g = generators::line(8);
        let positions = vec![
            NodeId(0),
            NodeId(0),
            NodeId(0),
            NodeId(0),
            NodeId(7),
            NodeId(7),
            NodeId(7),
            NodeId(7),
        ];
        let mut world = World::new(g, positions);
        run_sync(&mut world);
    }

    #[test]
    fn general_random_placements() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_connected(36, 0.12, seed);
            let n = g.num_nodes();
            let positions: Vec<NodeId> = (0..24)
                .map(|i| NodeId(((i * 7 + seed as usize * 3) % n) as u32))
                .collect();
            let mut world = World::new(g, positions);
            run_sync(&mut world);
        }
    }

    #[test]
    fn dispersion_configuration_is_a_fixpoint_quickly() {
        // Agents already dispersed: every group has size 1, each leader
        // settles at its own start node.
        let g = generators::ring(9);
        let positions: Vec<NodeId> = (0..6).map(|i| NodeId(i as u32)).collect();
        let mut world = World::new(g, positions);
        let out = run_sync(&mut world);
        assert!(out.rounds <= 2);
        assert_eq!(out.total_moves, 0);
    }

    #[test]
    fn async_round_robin_disperses() {
        let g = generators::random_tree(20, 9);
        let mut world = World::new_rooted(g, 20, NodeId(0));
        let mut proto = KsDfs::new(&world);
        let out = AsyncRunner::new(RunConfig::default(), RoundRobinAdversary::new(20))
            .run(&mut world, &mut proto)
            .unwrap();
        check_dispersion(&world).unwrap();
        assert!(out.epochs > 0);
    }

    #[test]
    fn async_random_subset_disperses() {
        let g = generators::erdos_renyi_connected(25, 0.15, 3);
        let mut world = World::new_rooted(g, 25, NodeId(0));
        let mut proto = KsDfs::new(&world);
        let out = AsyncRunner::new(
            RunConfig::default(),
            RandomSubsetAdversary::new(0.5, 25, 11),
        )
        .run(&mut world, &mut proto)
        .unwrap();
        check_dispersion(&world).unwrap();
        assert!(out.epochs > 0);
        assert!(out.steps >= out.epochs);
    }

    #[test]
    fn async_lagging_adversary_disperses_general_config() {
        let g = generators::grid2d(5, 5);
        let positions = vec![
            NodeId(0),
            NodeId(0),
            NodeId(24),
            NodeId(24),
            NodeId(12),
            NodeId(12),
            NodeId(12),
        ];
        let mut world = World::new(g, positions);
        let mut proto = KsDfs::new(&world);
        AsyncRunner::new(RunConfig::default(), LaggingAdversary::new(6, 7, 5))
            .run(&mut world, &mut proto)
            .unwrap();
        check_dispersion(&world).unwrap();
    }

    #[test]
    fn memory_stays_logarithmic() {
        let g = generators::star(64);
        let mut world = World::new_rooted(g, 64, NodeId(0));
        let out = run_sync(&mut world);
        assert!(
            envelope::memory_logarithmic(&out, 30.0),
            "peak {} bits is not O(log(k+Δ))",
            out.peak_memory_bits
        );
    }

    #[test]
    fn time_scales_like_m_on_dense_graphs() {
        // On the complete graph, m = k(k-1)/2 dominates, and the baseline's
        // time should grow clearly super-linearly in k.
        let t = |k: usize| {
            let g = generators::complete(k);
            let mut world = World::new_rooted(g, k, NodeId(0));
            run_sync(&mut world).rounds as f64
        };
        let t16 = t(16);
        let t32 = t(32);
        // Doubling k should much more than double the time (quadratic-ish).
        assert!(
            t32 / t16 > 2.5,
            "expected super-linear growth, got {t16} -> {t32}"
        );
    }
}
