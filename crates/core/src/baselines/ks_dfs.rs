//! The OPODIS'21-style group-DFS dispersion baseline (`O(min{m, kΔ})` time,
//! `O(log(k+Δ))` bits per agent), usable under both the SYNC and ASYNC
//! schedulers.
//!
//! ## Algorithm
//!
//! All unsettled agents that started on the same node travel together as a
//! *group* led by the largest-ID agent among them. At every node the group
//! visits for the first time, the smallest-ID unsettled member settles and
//! becomes the node's *settler*; the settler stores the port back to its DFS
//! parent and a scan cursor over its remaining ports. The group then examines
//! the settler's ports one at a time: it moves to the neighbor, settles an
//! agent there if the neighbor is free, and otherwise returns and advances
//! the cursor. When a node's ports are exhausted the group backtracks to the
//! parent. The traversal therefore charges `O(1)` group moves per examined
//! edge, i.e. `O(min{m, kΔ})` time overall.
//!
//! ## General initial configurations
//!
//! Multiple groups (one per initially-occupied node) run their DFSs
//! concurrently and treat *any* settled agent — of any group — as an occupied
//! node. This replaces the size-based subsumption of Kshemkalyani–Sharma with
//! a simpler scheme (documented in `DESIGN.md`): if a group exhausts its DFS
//! with members still unsettled (it got boxed into a "pocket" of occupied
//! nodes), the leftover members switch to *scatter mode* — independent seeded
//! random walks that settle on the first free node found. Scatter mode keeps
//! the algorithm correct on every input; its time is measured empirically
//! rather than bounded analytically.
//!
//! ## Group movement protocol
//!
//! The leader never outruns its followers: it publishes a move order (a port
//! plus a flip bit), waits until every follower has executed it and left the
//! node, and only then moves itself. This costs a small constant factor over
//! the paper's idealized counting and works identically under asynchronous
//! activation.

use crate::verify;
use disp_graph::Port;
use disp_sim::{bits, ActivationCtx, AgentId, AgentProtocol, World};

/// A published group move order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GroupOrder {
    /// Flips every time a new order is published.
    flip: bool,
    /// The port every follower must take.
    port: Port,
}

/// Why the leader is moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MoveIntent {
    /// Moving to an unexamined neighbor to check whether it is free.
    Scan,
    /// Returning to the DFS node after finding the neighbor occupied.
    Return,
    /// Backtracking to the DFS parent.
    Backtrack,
}

/// Leader control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaderPhase {
    /// At a node with the whole group; ready to decide the next action.
    Decide,
    /// Order published; waiting for all followers to leave, then move with
    /// the given intent.
    Departing(MoveIntent),
    /// Arrived at a scan target; decide whether to settle here or go back.
    CheckNeighbor,
}

/// Per-agent persistent state.
#[derive(Debug, Clone)]
enum AgentState {
    /// Travels with its leader, executing published orders.
    Follower {
        /// Simulator id of this agent's leader.
        leader: AgentId,
        /// Flip bit of the last executed order.
        executed: bool,
    },
    /// Runs the DFS for its group.
    Leader {
        phase: LeaderPhase,
        /// Number of unsettled followers in the group (leader excluded).
        group_size: usize,
        /// Currently published order, if any.
        order: Option<GroupOrder>,
        /// Port back to the DFS node while checking a neighbor.
        return_port: Option<Port>,
        /// `pin` recorded on the last move (parent port for a new settler).
        arrival_pin: Option<Port>,
        /// Algorithmic label of this group's tree (the leader's ID).
        treelabel: u32,
    },
    /// Settled at its node; stores the DFS bookkeeping for that node.
    Settled {
        parent_port: Option<Port>,
        /// Next port (1-based) to examine from this node.
        next_port: u32,
        treelabel: u32,
    },
    /// Scatter mode: random walk, settle at the first free node.
    Scatter {
        /// Small xorshift state, seeded per agent.
        rng: u64,
    },
}

/// The group-DFS baseline protocol (rooted and general configurations).
#[derive(Debug)]
pub struct KsDfs {
    states: Vec<AgentState>,
    /// Algorithmic IDs (index + 1 by default).
    ids: Vec<u32>,
    k: usize,
    max_degree: usize,
    settled_count: usize,
    scatter_seed: u64,
}

impl KsDfs {
    /// Build the protocol for the given world. One group is formed per
    /// initially-occupied node, led by the largest-ID agent on that node.
    pub fn new(world: &World) -> Self {
        Self::with_seed(world, 0xD15F_ECE5)
    }

    /// Like [`KsDfs::new`] with an explicit seed for the scatter-mode RNG.
    pub fn with_seed(world: &World, scatter_seed: u64) -> Self {
        let k = world.num_agents();
        let ids: Vec<u32> = (0..k as u32).map(|i| i + 1).collect();
        let mut states: Vec<Option<AgentState>> = vec![None; k];
        for v in world.graph().nodes() {
            let here: Vec<AgentId> = world.agents_at(v).collect();
            if here.is_empty() {
                continue;
            }
            let leader = *here.iter().max().expect("non-empty");
            for &a in &here {
                if a == leader {
                    states[a.index()] = Some(AgentState::Leader {
                        phase: LeaderPhase::Decide,
                        group_size: here.len() - 1,
                        order: None,
                        return_port: None,
                        arrival_pin: None,
                        treelabel: ids[leader.index()],
                    });
                } else {
                    states[a.index()] = Some(AgentState::Follower {
                        leader,
                        executed: false,
                    });
                }
            }
        }
        KsDfs {
            states: states
                .into_iter()
                .map(|s| s.expect("every agent grouped"))
                .collect(),
            ids,
            k,
            max_degree: world.graph().max_degree(),
            settled_count: 0,
            scatter_seed,
        }
    }

    /// Number of settled agents so far.
    pub fn settled_count(&self) -> usize {
        self.settled_count
    }

    /// Whether any agent had to fall back to scatter mode (pocket case).
    pub fn used_scatter_fallback(&self) -> bool {
        self.states
            .iter()
            .any(|s| matches!(s, AgentState::Scatter { .. }))
    }

    fn settler_at(&self, ctx: &ActivationCtx<'_>) -> Option<AgentId> {
        ctx.colocated_iter()
            .find(|a| matches!(self.states[a.index()], AgentState::Settled { .. }))
    }

    /// Smallest-ID co-located follower of `leader` (unsettled group member).
    fn smallest_follower_here(&self, ctx: &ActivationCtx<'_>, leader: AgentId) -> Option<AgentId> {
        ctx.colocated_iter()
            .filter(|a| {
                matches!(self.states[a.index()], AgentState::Follower { leader: l, .. } if l == leader)
            })
            .min_by_key(|a| self.ids[a.index()])
    }

    fn followers_here(&self, ctx: &ActivationCtx<'_>, leader: AgentId) -> usize {
        ctx.colocated_iter()
            .filter(|a| {
                matches!(self.states[a.index()], AgentState::Follower { leader: l, .. } if l == leader)
            })
            .count()
    }

    /// Settle `agent` and park it: a settled agent's activations are no-ops
    /// forever (its scan cursor is mutated passively by visiting leaders).
    fn settle(
        &mut self,
        ctx: &mut ActivationCtx<'_>,
        agent: AgentId,
        parent_port: Option<Port>,
        treelabel: u32,
    ) {
        self.states[agent.index()] = AgentState::Settled {
            parent_port,
            next_port: 1,
            treelabel,
        };
        self.settled_count += 1;
        ctx.park(agent);
    }

    fn act_leader(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Leader {
            phase,
            group_size,
            order,
            return_port,
            arrival_pin,
            treelabel,
        } = self.states[agent.index()].clone()
        else {
            unreachable!("act_leader on non-leader");
        };
        let mut phase = phase;
        let mut group_size = group_size;
        let mut order = order;
        let mut return_port = return_port;
        let mut arrival_pin = arrival_pin;

        match phase {
            LeaderPhase::Decide => {
                let settler = self.settler_at(ctx);
                match settler {
                    None => {
                        // First visit of this node by anyone: settle here.
                        if group_size == 0 {
                            // The leader is the last unsettled member.
                            self.settle(ctx, agent, arrival_pin, treelabel);
                            return;
                        }
                        let chosen = self
                            .smallest_follower_here(ctx, agent)
                            .expect("group_size > 0 implies a co-located follower");
                        self.settle(ctx, chosen, arrival_pin, treelabel);
                        group_size -= 1;
                        // Stay in Decide: the settler now exists and scanning
                        // starts at the next activation.
                    }
                    Some(settler) => {
                        // Scan the settler's ports. The DFS bookkeeping lives
                        // in the settler (legal: it is co-located).
                        let (parent_port, mut next_port, s_label) =
                            match self.states[settler.index()] {
                                AgentState::Settled {
                                    parent_port,
                                    next_port,
                                    treelabel,
                                } => (parent_port, next_port, treelabel),
                                _ => unreachable!(),
                            };
                        if s_label != treelabel {
                            // Another group's DFS settled this node before we
                            // could (under ASYNC a foreign scan can reach our
                            // home node before our leader's first
                            // activation). The whole group must fall back
                            // together: scattering only the leader would
                            // strand its followers waiting for orders from a
                            // leader that no longer exists.
                            self.scatter_group(agent, ctx);
                            return;
                        }
                        // Skip the parent port in the scan.
                        if Some(Port(next_port)) == parent_port {
                            next_port += 1;
                        }
                        if next_port as usize > ctx.degree() {
                            // Node exhausted: backtrack, or finish/fallback at
                            // the root.
                            match parent_port {
                                Some(p) => {
                                    order = Some(GroupOrder {
                                        flip: order.map(|o| !o.flip).unwrap_or(true),
                                        port: p,
                                    });
                                    phase = LeaderPhase::Departing(MoveIntent::Backtrack);
                                }
                                None => {
                                    // Root exhausted with members left: the
                                    // group is boxed in ("pocket"); fall back
                                    // to scatter mode for the remaining
                                    // members (including the leader).
                                    self.scatter_group(agent, ctx);
                                    return;
                                }
                            }
                        } else {
                            // Examine the neighbor behind `next_port`.
                            if let AgentState::Settled { next_port: np, .. } =
                                &mut self.states[settler.index()]
                            {
                                *np = next_port + 1;
                            }
                            order = Some(GroupOrder {
                                flip: order.map(|o| !o.flip).unwrap_or(true),
                                port: Port(next_port),
                            });
                            phase = LeaderPhase::Departing(MoveIntent::Scan);
                        }
                    }
                }
            }
            LeaderPhase::Departing(intent) => {
                let o = order.expect("departing without an order");
                if self.followers_here(ctx, agent) == 0 {
                    // All followers executed the order; follow them.
                    let pin = ctx.move_via(o.port);
                    arrival_pin = Some(pin);
                    match intent {
                        MoveIntent::Scan => {
                            return_port = Some(pin);
                            phase = LeaderPhase::CheckNeighbor;
                        }
                        MoveIntent::Return | MoveIntent::Backtrack => {
                            phase = LeaderPhase::Decide;
                        }
                    }
                }
                // else: keep waiting for stragglers.
            }
            LeaderPhase::CheckNeighbor => {
                let rp = return_port.expect("checking a neighbor without a return port");
                if self.settler_at(ctx).is_some() {
                    // Occupied: go back and try the next port.
                    order = Some(GroupOrder {
                        flip: order.map(|o| !o.flip).unwrap_or(true),
                        port: rp,
                    });
                    phase = LeaderPhase::Departing(MoveIntent::Return);
                } else {
                    // Free node: settle here (forward move of the DFS).
                    if group_size == 0 {
                        self.settle(ctx, agent, Some(rp), treelabel);
                        return;
                    }
                    let chosen = self
                        .smallest_follower_here(ctx, agent)
                        .expect("group_size > 0 implies a co-located follower");
                    self.settle(ctx, chosen, Some(rp), treelabel);
                    group_size -= 1;
                    phase = LeaderPhase::Decide;
                }
            }
        }

        self.states[agent.index()] = AgentState::Leader {
            phase,
            group_size,
            order,
            return_port,
            arrival_pin,
            treelabel,
        };
    }

    /// Switch the whole co-located group (leader included) to scatter mode.
    fn scatter_group(&mut self, leader: AgentId, ctx: &ActivationCtx<'_>) {
        let members: Vec<AgentId> = ctx.colocated_iter()
            .filter(|a| {
                matches!(self.states[a.index()], AgentState::Follower { leader: l, .. } if l == leader)
            })
            .collect();
        for a in members {
            self.states[a.index()] = AgentState::Scatter {
                rng: self.scatter_seed
                    ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(a.index() as u64 + 1)),
            };
        }
        self.states[leader.index()] = AgentState::Scatter {
            rng: self.scatter_seed
                ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(leader.index() as u64 + 1)),
        };
    }

    fn act_follower(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Follower { leader, executed } = self.states[agent.index()] else {
            unreachable!();
        };
        // Execute the leader's published order, if a fresh one is visible.
        if ctx.colocated_iter().any(|peer| peer == leader) {
            if let AgentState::Leader { order: Some(o), .. } = self.states[leader.index()] {
                if o.flip != executed {
                    ctx.move_via(o.port);
                    self.states[agent.index()] = AgentState::Follower {
                        leader,
                        executed: o.flip,
                    };
                }
            }
        }
    }

    fn act_scatter(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Scatter { mut rng } = self.states[agent.index()] else {
            unreachable!();
        };
        // If the current node is free of settlers, settle here (activation
        // order breaks ties between walkers arriving in the same round).
        if self.settler_at(ctx).is_none() {
            self.settle(ctx, agent, None, self.ids[agent.index()]);
            return;
        }
        // Otherwise take a pseudo-random step (xorshift64*).
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let d = ctx.degree();
        if d > 0 {
            let port = Port((rng % d as u64) as u32 + 1);
            ctx.move_via(port);
        }
        self.states[agent.index()] = AgentState::Scatter { rng };
    }
}

impl AgentProtocol for KsDfs {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        match self.states[agent.index()] {
            AgentState::Settled { .. } => {}
            AgentState::Leader { .. } => self.act_leader(agent, ctx),
            AgentState::Follower { .. } => self.act_follower(agent, ctx),
            AgentState::Scatter { .. } => self.act_scatter(agent, ctx),
        }
    }

    fn is_terminated(&self) -> bool {
        self.settled_count == self.k
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        matches!(self.states[agent.index()], AgentState::Settled { .. })
    }

    fn memory_bits(&self, agent: AgentId) -> usize {
        let id = bits::id_bits(self.k);
        let port = bits::port_bits(self.max_degree);
        match &self.states[agent.index()] {
            AgentState::Follower { .. } => id + id + bits::flag_bits(),
            AgentState::Leader { .. } => {
                // phase tag + group size counter + order (flag+port) +
                // return/arrival ports + treelabel + own id.
                id + 3
                    + bits::counter_bits(self.k as u64)
                    + bits::flag_bits()
                    + bits::opt_port_bits(self.max_degree)
                    + 2 * bits::opt_port_bits(self.max_degree)
                    + id
            }
            AgentState::Settled { .. } => id + bits::opt_port_bits(self.max_degree) + port + 1 + id,
            AgentState::Scatter { .. } => id + 64,
        }
    }

    fn name(&self) -> &'static str {
        "ks-dfs"
    }
}

/// Convenience: verify the final configuration after a run (panics with a
/// readable message on violation). Tests and the harness call this after the
/// runner finishes.
pub fn assert_dispersed(world: &World) {
    if let Err(v) = verify::check_dispersion(world) {
        panic!("dispersion violated by ks-dfs: {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_dispersion, envelope};
    use disp_graph::{generators, NodeId};
    use disp_sim::{
        AsyncRunner, LaggingAdversary, RandomSubsetAdversary, RoundRobinAdversary, RunConfig,
        SyncRunner,
    };

    fn run_sync(world: &mut World) -> disp_sim::Outcome {
        let mut proto = KsDfs::new(world);
        let out = SyncRunner::new(RunConfig::default())
            .run(world, &mut proto)
            .expect("ks-dfs must terminate");
        check_dispersion(world).expect("ks-dfs must disperse");
        out
    }

    #[test]
    fn rooted_on_line_settles_everyone() {
        let g = generators::line(12);
        let mut world = World::new_rooted(g, 12, NodeId(0));
        let out = run_sync(&mut world);
        assert!(out.terminated);
        assert!(envelope::within_min_m_k_delta(&out, 20.0));
    }

    #[test]
    fn rooted_on_line_from_middle() {
        let g = generators::line(15);
        let mut world = World::new_rooted(g, 15, NodeId(7));
        run_sync(&mut world);
    }

    #[test]
    fn rooted_on_star() {
        let g = generators::star(16);
        let mut world = World::new_rooted(g, 16, NodeId(0));
        let out = run_sync(&mut world);
        assert!(out.rounds > 0);
    }

    #[test]
    fn rooted_on_star_from_leaf() {
        let g = generators::star(16);
        let mut world = World::new_rooted(g, 16, NodeId(3));
        run_sync(&mut world);
    }

    #[test]
    fn rooted_fewer_agents_than_nodes() {
        let g = generators::random_tree(40, 5);
        let mut world = World::new_rooted(g, 17, NodeId(0));
        run_sync(&mut world);
    }

    #[test]
    fn rooted_on_complete_graph() {
        let g = generators::complete(10);
        let mut world = World::new_rooted(g, 10, NodeId(4));
        run_sync(&mut world);
    }

    #[test]
    fn rooted_on_random_graphs_many_seeds() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_connected(30, 0.15, seed);
            let mut world = World::new_rooted(g, 30, NodeId(0));
            run_sync(&mut world);
        }
    }

    #[test]
    fn single_agent_settles_immediately() {
        let g = generators::ring(5);
        let mut world = World::new_rooted(g, 1, NodeId(2));
        let out = run_sync(&mut world);
        assert!(out.rounds <= 2);
        assert_eq!(world.position(AgentId(0)), NodeId(2));
    }

    #[test]
    fn two_agents() {
        let g = generators::line(4);
        let mut world = World::new_rooted(g, 2, NodeId(1));
        run_sync(&mut world);
    }

    #[test]
    fn general_two_groups_on_line() {
        let g = generators::line(10);
        let positions = vec![
            NodeId(0),
            NodeId(0),
            NodeId(0),
            NodeId(9),
            NodeId(9),
            NodeId(9),
        ];
        let mut world = World::new(g, positions);
        run_sync(&mut world);
    }

    #[test]
    fn general_groups_collide_in_middle() {
        // Two large groups from both ends of a short line are forced into the
        // pocket/scatter fallback or tight interleaving; either way the final
        // configuration must be dispersed.
        let g = generators::line(8);
        let positions = vec![
            NodeId(0),
            NodeId(0),
            NodeId(0),
            NodeId(0),
            NodeId(7),
            NodeId(7),
            NodeId(7),
            NodeId(7),
        ];
        let mut world = World::new(g, positions);
        run_sync(&mut world);
    }

    #[test]
    fn general_random_placements() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_connected(36, 0.12, seed);
            let n = g.num_nodes();
            let positions: Vec<NodeId> = (0..24)
                .map(|i| NodeId(((i * 7 + seed as usize * 3) % n) as u32))
                .collect();
            let mut world = World::new(g, positions);
            run_sync(&mut world);
        }
    }

    #[test]
    fn dispersion_configuration_is_a_fixpoint_quickly() {
        // Agents already dispersed: every group has size 1, each leader
        // settles at its own start node.
        let g = generators::ring(9);
        let positions: Vec<NodeId> = (0..6).map(|i| NodeId(i as u32)).collect();
        let mut world = World::new(g, positions);
        let out = run_sync(&mut world);
        assert!(out.rounds <= 2);
        assert_eq!(out.total_moves, 0);
    }

    #[test]
    fn async_round_robin_disperses() {
        let g = generators::random_tree(20, 9);
        let mut world = World::new_rooted(g, 20, NodeId(0));
        let mut proto = KsDfs::new(&world);
        let out = AsyncRunner::new(RunConfig::default(), RoundRobinAdversary::new(20))
            .run(&mut world, &mut proto)
            .unwrap();
        check_dispersion(&world).unwrap();
        assert!(out.epochs > 0);
    }

    #[test]
    fn async_random_subset_disperses() {
        let g = generators::erdos_renyi_connected(25, 0.15, 3);
        let mut world = World::new_rooted(g, 25, NodeId(0));
        let mut proto = KsDfs::new(&world);
        let out = AsyncRunner::new(
            RunConfig::default(),
            RandomSubsetAdversary::new(0.5, 25, 11),
        )
        .run(&mut world, &mut proto)
        .unwrap();
        check_dispersion(&world).unwrap();
        assert!(out.epochs > 0);
        assert!(out.steps >= out.epochs);
    }

    #[test]
    fn async_lagging_adversary_disperses_general_config() {
        let g = generators::grid2d(5, 5);
        let positions = vec![
            NodeId(0),
            NodeId(0),
            NodeId(24),
            NodeId(24),
            NodeId(12),
            NodeId(12),
            NodeId(12),
        ];
        let mut world = World::new(g, positions);
        let mut proto = KsDfs::new(&world);
        AsyncRunner::new(RunConfig::default(), LaggingAdversary::new(6, 7, 5))
            .run(&mut world, &mut proto)
            .unwrap();
        check_dispersion(&world).unwrap();
    }

    #[test]
    fn memory_stays_logarithmic() {
        let g = generators::star(64);
        let mut world = World::new_rooted(g, 64, NodeId(0));
        let out = run_sync(&mut world);
        assert!(
            envelope::memory_logarithmic(&out, 30.0),
            "peak {} bits is not O(log(k+Δ))",
            out.peak_memory_bits
        );
    }

    #[test]
    fn time_scales_like_m_on_dense_graphs() {
        // On the complete graph, m = k(k-1)/2 dominates, and the baseline's
        // time should grow clearly super-linearly in k.
        let t = |k: usize| {
            let g = generators::complete(k);
            let mut world = World::new_rooted(g, k, NodeId(0));
            run_sync(&mut world).rounds as f64
        };
        let t16 = t(16);
        let t32 = t(32);
        // Doubling k should much more than double the time (quadratic-ish).
        assert!(
            t32 / t16 > 2.5,
            "expected super-linear growth, got {t16} -> {t32}"
        );
    }
}
