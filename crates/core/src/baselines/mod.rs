//! State-of-the-art baselines the paper compares against.
//!
//! * [`ks_dfs`] — the Kshemkalyani–Sharma (OPODIS'21) style group DFS with
//!   `O(min{m, kΔ})` time, the asynchronous state of the art before this
//!   paper.
//! * [`crate::probe_dfs`] doubles as the
//!   Sudo et al. (DISC'24) style doubling-probe baseline when run under the
//!   synchronous scheduler.

pub mod ks_dfs;

pub use ks_dfs::KsDfs;
