//! Oscillation groups and trips (paper §5.2, Lemmas 2–3).
//!
//! Given an [`crate::empty_node::Selection`] over a DFS tree, every empty
//! node is covered by a settled agent within two hops: either its parent's
//! settler visits it (Case I) or a sibling's settler does, via the shared
//! parent (Case II). The covering settler repeats a short round-robin trip —
//! the *oscillation trip* — so that any probing seeker waiting 6 rounds at a
//! covered node is guaranteed to meet it (that is what makes `Sync_Probe`
//! sound on trees with empty nodes).
//!
//! This module derives the concrete trips from a selection and verifies
//! Lemma 2: every trip finishes within 6 moves.

use crate::empty_node::{Coverer, Selection, Tree};
use disp_sim::Trip;
use std::collections::HashMap;

/// The oscillation plan of one covering settler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OscillationGroup {
    /// The settled node that performs the trip.
    pub coverer: usize,
    /// The empty nodes it is responsible for (≤ 3 children or ≤ 2 siblings).
    pub covered: Vec<usize>,
    /// Whether this is a Case I (children) or Case II (siblings) group.
    pub kind: GroupKind,
}

/// Which of the two oscillation cases of Lemma 2 a group uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// The coverer visits empty children one at a time (`s−a−s−b−s−c−s`).
    Children,
    /// The coverer goes up to the shared parent and visits empty siblings
    /// (`s−p−a−p−b−p−s`).
    Siblings,
}

impl OscillationGroup {
    /// Number of edge traversals of one full trip (Lemma 2: at most 6).
    pub fn trip_moves(&self) -> usize {
        match self.kind {
            GroupKind::Children => 2 * self.covered.len(),
            GroupKind::Siblings => 2 + 2 * self.covered.len(),
        }
    }

    /// Materialize the trip as a [`disp_sim::Trip`], given the local ports the
    /// coverer needs (the algorithm hands these over when it assigns
    /// coverage; here the caller supplies them, e.g. from the graph layer in
    /// tests). `ports` must contain one port per covered node; for the
    /// sibling case `parent_port` is the coverer's port toward the shared
    /// parent and `ports` are ports *at the parent*.
    pub fn to_trip(
        &self,
        parent_port: Option<disp_graph::Port>,
        ports: &[disp_graph::Port],
    ) -> Trip {
        assert_eq!(ports.len(), self.covered.len(), "one port per covered node");
        match self.kind {
            GroupKind::Children => Trip::oscillate_children(ports),
            GroupKind::Siblings => Trip::oscillate_siblings(
                parent_port.expect("sibling trips need the parent port"),
                ports,
            ),
        }
    }
}

/// Group the coverage assignments of a [`Selection`] into oscillation groups
/// (one per covering settler).
pub fn oscillation_groups(tree: &Tree, sel: &Selection) -> Vec<OscillationGroup> {
    let mut children_groups: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut sibling_groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for v in 0..tree.len() {
        if sel.settled[v] {
            continue;
        }
        match sel.coverage[&v] {
            Coverer::Parent(p) => children_groups.entry(p).or_default().push(v),
            Coverer::Sibling(s) => sibling_groups.entry(s).or_default().push(v),
        }
    }
    let mut groups = Vec::new();
    for (coverer, mut covered) in children_groups {
        covered.sort_unstable();
        groups.push(OscillationGroup {
            coverer,
            covered,
            kind: GroupKind::Children,
        });
    }
    for (coverer, mut covered) in sibling_groups {
        covered.sort_unstable();
        groups.push(OscillationGroup {
            coverer,
            covered,
            kind: GroupKind::Siblings,
        });
    }
    groups.sort_by_key(|g| g.coverer);
    groups
}

/// Lemma 2 check: every oscillation trip needs at most 6 moves, and with a
/// 6-round wait a prober is guaranteed to overlap the coverer at the covered
/// node (the trip visits each covered node once per period).
pub fn check_lemma2(groups: &[OscillationGroup]) -> Result<(), String> {
    for g in groups {
        if g.trip_moves() > 6 {
            return Err(format!(
                "coverer {} has a trip of {} moves (> 6): {:?}",
                g.coverer,
                g.trip_moves(),
                g
            ));
        }
        match g.kind {
            GroupKind::Children if g.covered.len() > 3 => {
                return Err(format!("coverer {} covers > 3 children", g.coverer))
            }
            GroupKind::Siblings if g.covered.len() > 2 => {
                return Err(format!("coverer {} covers > 2 siblings", g.coverer))
            }
            _ => {}
        }
    }
    Ok(())
}

/// Lemma 3 classification: which settlers oscillate at all. A settler
/// oscillates iff it owns at least one (non-empty) oscillation group.
pub fn oscillating_settlers(groups: &[OscillationGroup]) -> Vec<usize> {
    let mut v: Vec<usize> = groups
        .iter()
        .filter(|g| !g.covered.is_empty())
        .map(|g| g.coverer)
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empty_node::{empty_node_selection, random_attachment_tree, Tree};
    use disp_graph::Port;
    use disp_rng::prelude::*;
    use disp_sim::TripStep;

    fn line_tree(k: usize) -> Tree {
        Tree::from_parents(
            (0..k)
                .map(|i| if i == 0 { usize::MAX } else { i - 1 })
                .collect(),
        )
    }

    #[test]
    fn line_oscillation_is_child_groups_of_one() {
        let t = line_tree(7);
        let sel = empty_node_selection(&t);
        let groups = oscillation_groups(&t, &sel);
        check_lemma2(&groups).unwrap();
        for g in &groups {
            assert_eq!(g.kind, GroupKind::Children);
            assert_eq!(g.covered.len(), 1);
            assert_eq!(g.trip_moves(), 2);
        }
        assert_eq!(oscillating_settlers(&groups).len(), groups.len());
    }

    #[test]
    fn star_oscillation_mixes_cases() {
        let t = Tree::from_parents(
            (0..13)
                .map(|i| if i == 0 { usize::MAX } else { 0 })
                .collect(),
        );
        let sel = empty_node_selection(&t);
        let groups = oscillation_groups(&t, &sel);
        check_lemma2(&groups).unwrap();
        assert!(groups.iter().any(|g| g.kind == GroupKind::Children));
        assert!(groups.iter().any(|g| g.kind == GroupKind::Siblings));
    }

    #[test]
    fn trips_materialize_with_correct_lengths() {
        let g = OscillationGroup {
            coverer: 0,
            covered: vec![1, 2, 3],
            kind: GroupKind::Children,
        };
        let trip = g.to_trip(None, &[Port(1), Port(2), Port(3)]);
        assert_eq!(trip.num_moves(), 6);
        let g = OscillationGroup {
            coverer: 5,
            covered: vec![6, 7],
            kind: GroupKind::Siblings,
        };
        let trip = g.to_trip(Some(Port(4)), &[Port(1), Port(2)]);
        assert_eq!(trip.num_moves(), 6);
        assert!(matches!(trip.steps()[0], TripStep::Out(Port(4))));
    }

    #[test]
    fn every_empty_node_is_in_exactly_one_group() {
        for seed in 0..10 {
            let t = random_attachment_tree(80, seed);
            let sel = empty_node_selection(&t);
            let groups = oscillation_groups(&t, &sel);
            let covered_total: usize = groups.iter().map(|g| g.covered.len()).sum();
            assert_eq!(covered_total, sel.num_empty());
        }
    }

    /// Lemma 2 holds on arbitrary random trees.
    #[test]
    fn lemma2_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(0x05C1_0001);
        for _ in 0..96 {
            let k = rng.random_range(1..250usize);
            let seed = rng.random_range(0..10_000u64);
            let t = random_attachment_tree(k, seed);
            let sel = empty_node_selection(&t);
            let groups = oscillation_groups(&t, &sel);
            assert!(check_lemma2(&groups).is_ok(), "k={k}, seed={seed}");
        }
    }

    /// Oscillating settlers are always settled nodes (Lemma 3 sanity).
    #[test]
    fn oscillators_are_settled() {
        let mut rng = StdRng::seed_from_u64(0x05C1_0002);
        for _ in 0..96 {
            let k = rng.random_range(1..200usize);
            let seed = rng.random_range(0..10_000u64);
            let t = random_attachment_tree(k, seed);
            let sel = empty_node_selection(&t);
            let groups = oscillation_groups(&t, &sel);
            for s in oscillating_settlers(&groups) {
                assert!(sel.settled[s], "k={k}, seed={seed}, settler {s}");
            }
        }
    }
}
