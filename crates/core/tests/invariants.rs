//! The every-step invariant harness.
//!
//! A seeded grid over every registered algorithm × placement family ×
//! schedule family, asserting **at every step** — via a wrapper protocol
//! that observes each activation — the safety invariant *"no two settled
//! agents share a node"*, and at termination a valid dispersion plus the
//! paper's step/round and memory envelopes. This is the oracle that must
//! catch any regression the flat-state engine (worklist, cohorts, implicit
//! topologies) introduces: every settlement, recruit, see-off and cohort
//! move passes through an activation at the affected node, so checking the
//! activated agent's node each step observes every way a collision can come
//! into existence.
//!
//! The test-of-the-test lives behind the `inject-collision` feature (see
//! `Cargo.toml`): with it enabled, `probe-dfs` deliberately settles a second
//! agent on an occupied node and the harness must panic at that step. CI
//! runs `cargo test -p disp-core --features inject-collision --test
//! invariants` to prove the oracle has teeth.

use disp_core::extras::random_walk::RandomWalkFactory;
use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
use disp_core::verify::{check_dispersion, envelope};
use disp_graph::generators::GraphFamily;
use disp_rng::mix;
use disp_sim::{
    ActivationCtx, AgentId, AgentProtocol, AsyncRunner, Outcome, Placement, SyncRunner, World,
};

/// Wraps a protocol and checks the settled-collision safety invariant after
/// every single activation (the "trace hook" of the harness).
struct InvariantChecked {
    inner: Box<dyn AgentProtocol>,
    checks: u64,
}

impl AgentProtocol for InvariantChecked {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        self.inner.on_activate(agent, ctx);
        // Safety: at most one settled agent on the activated agent's node.
        // Settled agents never ride cohorts, so the concrete occupancy list
        // sees all of them.
        let settled: Vec<AgentId> = ctx
            .agents_here()
            .filter(|&a| self.inner.is_settled(a))
            .collect();
        assert!(
            settled.len() <= 1,
            "safety violation at time {}: {} settled agents share node {} after activating {agent}: {settled:?}",
            ctx.time(),
            settled.len(),
            ctx.node(),
        );
        self.checks += 1;
    }

    fn is_terminated(&self) -> bool {
        self.inner.is_terminated()
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        self.inner.is_settled(agent)
    }

    fn memory_bits(&self, agent: AgentId) -> usize {
        self.inner.memory_bits(agent)
    }

    fn name(&self) -> &'static str {
        "invariant-checked"
    }
}

fn registry() -> Registry {
    Registry::builtin().with(RandomWalkFactory)
}

/// Run `spec` under `seed` with the every-step checker attached. Built
/// through [`ScenarioSpec::build`], so the harness exercises exactly the
/// instances (graph/placement/algorithm sub-seeds and all) that campaigns
/// run, while keeping the `World` so the caller can verify the final
/// configuration.
fn run_checked(spec: &ScenarioSpec, registry: &Registry, seed: u64) -> (Outcome, World, u64) {
    let (mut world, inner) = spec.build(registry, seed).expect("grid specs are valid");
    let mut protocol = InvariantChecked { inner, checks: 0 };
    let config = spec.run_config(&world);
    let outcome = match spec.build_adversary(world.num_agents(), seed) {
        None => SyncRunner::new(config)
            .run(&mut world, &mut protocol)
            .expect("grid runs must terminate"),
        Some(adversary) => AsyncRunner::new(config, adversary)
            .run(&mut world, &mut protocol)
            .expect("grid runs must terminate"),
    };
    (outcome, world, protocol.checks)
}

fn grid_specs() -> Vec<ScenarioSpec> {
    let families = [
        GraphFamily::Line,
        GraphFamily::Star,
        GraphFamily::RandomTree,
        GraphFamily::ErdosRenyi { avg_degree: 6.0 },
        GraphFamily::Torus,
        GraphFamily::Complete,
    ];
    let placements = Placement::all();
    let schedules = [
        Schedule::Sync,
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.6, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 3,
            seed: 0,
        },
        Schedule::AsyncTargeted { max_lag: 3 },
    ];
    let registry = registry();
    let mut specs = Vec::new();
    for family in families {
        for algorithm in registry.labels() {
            for &placement in &placements {
                for schedule in schedules {
                    let mut spec = ScenarioSpec::new(family, 18, algorithm)
                        .with_placement(placement)
                        .with_schedule(schedule);
                    if !placement.is_rooted() {
                        // Give non-rooted starts room to actually collide.
                        spec = spec.with_occupancy(0.5);
                    }
                    if spec.validate(&registry).is_ok() {
                        specs.push(spec);
                    }
                }
            }
        }
    }
    specs
}

fn check_envelopes(spec: &ScenarioSpec, outcome: &Outcome) {
    assert!(
        envelope::memory_logarithmic(outcome, 36.0),
        "{spec}: peak {} bits is not O(log(k+Δ))",
        outcome.peak_memory_bits
    );
    match spec.algorithm.as_str() {
        "probe-dfs" | "sync-seeker" => assert!(
            envelope::within_k_log_k(outcome, 80.0),
            "{spec}: time {} exceeds the O(k log k) envelope",
            outcome.time()
        ),
        "ks-dfs" => assert!(
            envelope::within_min_m_k_delta(outcome, 80.0),
            "{spec}: time {} exceeds the O(min{{m, kΔ}}) envelope",
            outcome.time()
        ),
        // The random walk is a correctness guinea pig; its time is
        // cover-time-ish by design and deliberately unbounded here.
        _ => {}
    }
}

#[cfg(not(feature = "inject-collision"))]
#[test]
fn every_algorithm_placement_schedule_combination_holds_the_invariant() {
    let registry = registry();
    let specs = grid_specs();
    assert!(specs.len() >= 100, "grid too small: {}", specs.len());
    let mut total_checks = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        for rep in 0..2u64 {
            let seed = mix(&[0x0117_C0DE, i as u64, rep]);
            let (outcome, world, checks) = run_checked(spec, &registry, seed);
            assert!(outcome.terminated, "{spec} seed {seed}");
            check_dispersion(&world)
                .unwrap_or_else(|v| panic!("{spec} seed {seed}: final config invalid: {v}"));
            check_envelopes(spec, &outcome);
            assert!(checks > 0, "{spec}: the step hook never fired");
            total_checks += checks;
        }
    }
    // The harness really did observe every executed activation.
    assert!(
        total_checks > 100_000,
        "only {total_checks} step checks ran"
    );
}

#[cfg(not(feature = "inject-collision"))]
#[test]
fn worklist_parking_is_observably_equivalent_to_full_scans() {
    // The flat engine credits parked agents instead of activating them;
    // rounds/epochs/activations/moves must all look as if everyone had been
    // activated. Spot-check the strongest observable: a SYNC run's
    // activation count is exactly k · rounds even though most agents spend
    // the run parked (settled or riding).
    let registry = registry();
    for algorithm in ["probe-dfs", "ks-dfs", "sync-seeker"] {
        let spec = ScenarioSpec::new(GraphFamily::RandomTree, 24, algorithm);
        let (outcome, _, _) = run_checked(&spec, &registry, 9);
        assert_eq!(
            outcome.activations,
            outcome.rounds * 24,
            "{algorithm}: credited activations must equal k · rounds"
        );
    }
}

/// The test-of-the-test: with the `inject-collision` feature enabled,
/// `probe-dfs` deliberately double-settles a node; the harness must abort at
/// that exact step (not at termination).
#[cfg(feature = "inject-collision")]
#[test]
fn harness_catches_the_injected_collision() {
    let registry = registry();
    let spec = ScenarioSpec::new(GraphFamily::Line, 12, "probe-dfs");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_checked(&spec, &registry, 5)
    }));
    let err = result.expect_err("the invariant harness missed the injected collision");
    let message = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("settled agents share node"),
        "unexpected panic message: {message}"
    );
}
