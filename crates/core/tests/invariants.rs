//! The every-step invariant harness.
//!
//! A seeded grid over every registered algorithm × placement family ×
//! schedule family, asserting **at every step** — via a wrapper protocol
//! that observes each activation — the safety invariant *"no two settled
//! agents share a node"*, and at termination a valid dispersion plus the
//! paper's step/round and memory envelopes. This is the oracle that must
//! catch any regression the flat-state engine (worklist, cohorts, implicit
//! topologies) introduces: every settlement, recruit, see-off and cohort
//! move passes through an activation at the affected node, so checking the
//! activated agent's node each step observes every way a collision can come
//! into existence.
//!
//! Two test-of-the-test hooks prove the oracle has teeth (see `Cargo.toml`):
//! with `inject-collision`, `probe-dfs` deliberately settles a second agent
//! on an occupied node and the harness must panic at that step; with
//! `inject-orphan`, the verifier keeps counting crashed agents' positions
//! and the harness must flag the survivor that re-settles an orphaned node.
//! CI runs `cargo test -p disp-core --features <hook> --test invariants`
//! for both.

use disp_core::extras::spacer::SpacerFactory;
use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
use disp_core::verify::{check_dispersion, check_dispersion_at, envelope};
use disp_graph::generators::GraphFamily;
use disp_rng::mix;
use disp_sim::{
    ActivationCtx, AgentId, AgentProtocol, AsyncRunner, Outcome, Placement, SyncRunner, World,
};

/// Wraps a protocol and checks the settled-collision safety invariant after
/// every single activation (the "trace hook" of the harness).
struct InvariantChecked {
    inner: Box<dyn AgentProtocol>,
    checks: u64,
}

impl AgentProtocol for InvariantChecked {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        self.inner.on_activate(agent, ctx);
        // Safety: at most one settled agent on the activated agent's node.
        // Settled agents never ride cohorts, so the concrete occupancy list
        // sees all of them.
        let settled: Vec<AgentId> = ctx
            .agents_here()
            .filter(|&a| self.inner.is_settled(a))
            .collect();
        assert!(
            settled.len() <= 1,
            "safety violation at time {}: {} settled agents share node {} after activating {agent}: {settled:?}",
            ctx.time(),
            settled.len(),
            ctx.node(),
        );
        self.checks += 1;
    }

    fn on_crash(&mut self, agent: AgentId) {
        // Forward faults: the inner protocol must retract the corpse's
        // claims or termination never comes.
        self.inner.on_crash(agent);
    }

    fn is_terminated(&self) -> bool {
        self.inner.is_terminated()
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        self.inner.is_settled(agent)
    }

    fn memory_bits(&self, agent: AgentId) -> usize {
        self.inner.memory_bits(agent)
    }

    fn name(&self) -> &'static str {
        "invariant-checked"
    }
}

// `random-walk` is builtin now; `spacer` rides along for the fault-world
// grid (it is ring-only, so `grid_specs` never selects it — its specs are
// added explicitly below).
fn registry() -> Registry {
    Registry::builtin().with(SpacerFactory)
}

/// Run `spec` under `seed` with the every-step checker attached. Built
/// through [`ScenarioSpec::build`], so the harness exercises exactly the
/// instances (graph/placement/algorithm sub-seeds and all) that campaigns
/// run, while keeping the `World` so the caller can verify the final
/// configuration.
fn run_checked(spec: &ScenarioSpec, registry: &Registry, seed: u64) -> (Outcome, World, u64) {
    let (mut world, inner) = spec.build(registry, seed).expect("grid specs are valid");
    let mut protocol = InvariantChecked { inner, checks: 0 };
    let config = spec.run_config(&world);
    let (dynamics, crashes) = spec.build_faults(world.num_agents(), seed);
    let outcome = match spec.build_adversary(world.num_agents(), seed) {
        None => {
            let mut runner = SyncRunner::new(config);
            if let Some(d) = dynamics {
                runner = runner.with_dynamics(d);
            }
            if let Some(c) = crashes {
                runner = runner.with_crashes(c);
            }
            runner
                .run(&mut world, &mut protocol)
                .expect("grid runs must terminate")
        }
        Some(adversary) => {
            let mut runner = AsyncRunner::new(config, adversary);
            if let Some(d) = dynamics {
                runner = runner.with_dynamics(d);
            }
            if let Some(c) = crashes {
                runner = runner.with_crashes(c);
            }
            runner
                .run(&mut world, &mut protocol)
                .expect("grid runs must terminate")
        }
    };
    (outcome, world, protocol.checks)
}

fn grid_specs() -> Vec<ScenarioSpec> {
    let families = [
        GraphFamily::Line,
        GraphFamily::Star,
        GraphFamily::RandomTree,
        GraphFamily::ErdosRenyi { avg_degree: 6.0 },
        GraphFamily::Torus,
        GraphFamily::Complete,
    ];
    let placements = Placement::all();
    let schedules = [
        Schedule::Sync,
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.6, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 3,
            seed: 0,
        },
        Schedule::AsyncTargeted { max_lag: 3 },
    ];
    let registry = registry();
    let mut specs = Vec::new();
    for family in families {
        for algorithm in registry.labels() {
            // spacer is ring-only — enforced by construction-time asserts,
            // not `validate` — and the grid has no ring family; its specs
            // live in `fault_world_specs`.
            if algorithm == "spacer" {
                continue;
            }
            for &placement in &placements {
                for schedule in schedules {
                    let mut spec = ScenarioSpec::new(family, 18, algorithm)
                        .with_placement(placement)
                        .with_schedule(schedule);
                    if !placement.is_rooted() {
                        // Give non-rooted starts room to actually collide.
                        spec = spec.with_occupancy(0.5);
                    }
                    if spec.validate(&registry).is_ok() {
                        specs.push(spec);
                    }
                }
            }
        }
    }
    specs
}

/// Fault-world scenarios: the dynamic-ring adversary, crash plans, and the
/// distance-k predicate, across the schedule families. Kept separate from
/// [`grid_specs`] because faults are ring-only and stretch run time past
/// the paper's fault-free envelopes.
fn fault_world_specs() -> Vec<ScenarioSpec> {
    let registry = registry();
    let schedules = [
        Schedule::Sync,
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.6, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 3,
            seed: 0,
        },
    ];
    let mut specs = Vec::new();
    for schedule in schedules {
        // One ring edge down per round, restored the next (arXiv 2408.12220).
        specs.push(
            ScenarioSpec::new(GraphFamily::Ring, 18, "probe-dfs")
                .with_schedule(schedule)
                .with_dynamic_ring(1),
        );
        // Crash faults from a scattered start: orphaned nodes re-settle.
        specs.push(
            ScenarioSpec::new(GraphFamily::Ring, 18, "random-walk")
                .with_placement(Placement::ScatteredUniform)
                .with_occupancy(0.5)
                .with_schedule(schedule)
                .with_crashes(4),
        );
        // Edge churn and crashes at once.
        specs.push(
            ScenarioSpec::new(GraphFamily::Ring, 18, "random-walk")
                .with_occupancy(0.5)
                .with_schedule(schedule)
                .with_dynamic_ring(1)
                .with_crashes(3),
        );
        // Distance-2 dispersion under churn (spacer is the positive oracle).
        specs.push(
            ScenarioSpec::new(GraphFamily::Ring, 12, "spacer")
                .with_occupancy(0.25)
                .with_schedule(schedule)
                .with_dynamic_ring(1)
                .with_min_distance(2),
        );
    }
    specs.retain(|s| s.validate(&registry).is_ok());
    specs
}

fn check_envelopes(spec: &ScenarioSpec, outcome: &Outcome) {
    assert!(
        envelope::memory_logarithmic(outcome, 36.0),
        "{spec}: peak {} bits is not O(log(k+Δ))",
        outcome.peak_memory_bits
    );
    match spec.algorithm.as_str() {
        "probe-dfs" | "sync-seeker" => assert!(
            envelope::within_k_log_k(outcome, 80.0),
            "{spec}: time {} exceeds the O(k log k) envelope",
            outcome.time()
        ),
        "ks-dfs" => assert!(
            envelope::within_min_m_k_delta(outcome, 80.0),
            "{spec}: time {} exceeds the O(min{{m, kΔ}}) envelope",
            outcome.time()
        ),
        // The random walk is a correctness guinea pig; its time is
        // cover-time-ish by design and deliberately unbounded here.
        _ => {}
    }
}

#[cfg(not(any(feature = "inject-collision", feature = "inject-orphan")))]
#[test]
fn every_algorithm_placement_schedule_combination_holds_the_invariant() {
    let registry = registry();
    let specs = grid_specs();
    assert!(specs.len() >= 100, "grid too small: {}", specs.len());
    let mut total_checks = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        for rep in 0..2u64 {
            let seed = mix(&[0x0117_C0DE, i as u64, rep]);
            let (outcome, world, checks) = run_checked(spec, &registry, seed);
            assert!(outcome.terminated, "{spec} seed {seed}");
            check_dispersion(&world)
                .unwrap_or_else(|v| panic!("{spec} seed {seed}: final config invalid: {v}"));
            check_envelopes(spec, &outcome);
            assert!(checks > 0, "{spec}: the step hook never fired");
            total_checks += checks;
        }
    }
    // The harness really did observe every executed activation.
    assert!(
        total_checks > 100_000,
        "only {total_checks} step checks ran"
    );
}

#[cfg(not(any(feature = "inject-collision", feature = "inject-orphan")))]
#[test]
fn fault_worlds_hold_the_invariant_and_disperse() {
    let registry = registry();
    let specs = fault_world_specs();
    assert!(specs.len() >= 16, "fault grid too small: {}", specs.len());
    for (i, spec) in specs.iter().enumerate() {
        for rep in 0..2u64 {
            let seed = mix(&[0xFA17_C0DE, i as u64, rep]);
            let (outcome, world, checks) = run_checked(spec, &registry, seed);
            assert!(outcome.terminated, "{spec} seed {seed}");
            check_dispersion_at(&world, spec.min_distance).unwrap_or_else(|v| {
                panic!("{spec} seed {seed}: final fault-world config invalid: {v}")
            });
            // Fault worlds still satisfy the memory envelope; the time
            // envelopes do not apply (the adversary stretches runs at will).
            assert!(
                envelope::memory_logarithmic(&outcome, 36.0),
                "{spec}: peak {} bits is not O(log(k+Δ))",
                outcome.peak_memory_bits
            );
            assert!(checks > 0, "{spec}: the step hook never fired");
        }
    }
}

#[cfg(not(any(feature = "inject-collision", feature = "inject-orphan")))]
#[test]
fn fault_worlds_are_seed_deterministic() {
    // Same spec + same seed must reproduce the exact outcome even with the
    // adversary flipping edges and the crash plan killing agents mid-run.
    let registry = registry();
    for spec in fault_world_specs().iter().take(4) {
        let (a, _, _) = run_checked(spec, &registry, 0xD1E5);
        let (b, _, _) = run_checked(spec, &registry, 0xD1E5);
        assert_eq!(a, b, "{spec}: fault injection must be seed-determined");
    }
}

#[cfg(not(any(feature = "inject-collision", feature = "inject-orphan")))]
#[test]
fn worklist_parking_is_observably_equivalent_to_full_scans() {
    // The flat engine credits parked agents instead of activating them;
    // rounds/epochs/activations/moves must all look as if everyone had been
    // activated. Spot-check the strongest observable: a SYNC run's
    // activation count is exactly k · rounds even though most agents spend
    // the run parked (settled or riding).
    let registry = registry();
    for algorithm in ["probe-dfs", "ks-dfs", "sync-seeker"] {
        let spec = ScenarioSpec::new(GraphFamily::RandomTree, 24, algorithm);
        let (outcome, _, _) = run_checked(&spec, &registry, 9);
        assert_eq!(
            outcome.activations,
            outcome.rounds * 24,
            "{algorithm}: credited activations must equal k · rounds"
        );
    }
}

/// The test-of-the-test: with the `inject-collision` feature enabled,
/// `probe-dfs` deliberately double-settles a node; the harness must abort at
/// that exact step (not at termination).
#[cfg(feature = "inject-collision")]
#[test]
fn harness_catches_the_injected_collision() {
    let registry = registry();
    let spec = ScenarioSpec::new(GraphFamily::Line, 12, "probe-dfs");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_checked(&spec, &registry, 5)
    }));
    let err = result.expect_err("the invariant harness missed the injected collision");
    let message = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("settled agents share node"),
        "unexpected panic message: {message}"
    );
}

/// The crash-side test-of-the-test: with `inject-orphan` enabled, the
/// verifier keeps counting crashed agents' final positions, so a survivor
/// re-settling an orphaned node must surface as a collision.
#[cfg(feature = "inject-orphan")]
#[test]
fn harness_catches_the_orphaned_resettlement() {
    let registry = registry();
    // A full ring (k = n) with four crashes: the survivors have to reuse
    // corpse nodes, so the orphan-counting verifier must object. The seed
    // pins a run where that reuse happens.
    let spec = ScenarioSpec::new(GraphFamily::Ring, 12, "random-walk")
        .with_placement(Placement::ScatteredUniform)
        .with_occupancy(1.0)
        .with_crashes(4);
    let (outcome, world, _) = run_checked(&spec, &registry, 3);
    assert!(outcome.terminated);
    let err =
        check_dispersion(&world).expect_err("inject-orphan must flag the re-settled corpse node");
    assert!(
        matches!(
            err,
            disp_core::verify::DispersionViolation::Collision { .. }
        ),
        "expected an orphan collision, got: {err}"
    );
    // The same configuration is legal once corpses stop counting, which is
    // exactly what the injected bug suppresses — checked from the other
    // side by `fault_worlds_hold_the_invariant_and_disperse`.
    let _ = check_dispersion_at(&world, spec.min_distance);
}
