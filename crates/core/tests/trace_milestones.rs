//! The trace-export contract: `run_traced` records the Move/CohortMove
//! stream plus the Milestone codes the protocols document, without
//! perturbing the run, and respects the bounded-growth cap.

use disp_core::probe_dfs::MILESTONE_SETTLED;
use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_sim::{TraceEvent, DEFAULT_TRACE_CAP};

#[test]
fn probe_dfs_run_records_one_settled_milestone_per_agent() {
    let registry = Registry::builtin();
    let spec = ScenarioSpec::new(GraphFamily::Line, 24, "probe-dfs").with_schedule(Schedule::Sync);
    let (report, trace) = spec.run_traced(&registry, 7, DEFAULT_TRACE_CAP).unwrap();
    assert!(report.dispersed);
    assert!(!trace.truncated());

    let settled: Vec<_> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Milestone {
                agent,
                node,
                code: MILESTONE_SETTLED,
                ..
            } => Some((*agent, *node)),
            _ => None,
        })
        .collect();
    // On a line under SYNC no settler is ever recruited back off its node,
    // so exactly k settlements fire, each on a distinct node.
    assert_eq!(settled.len(), 24, "one SETTLED milestone per agent");
    let mut nodes: Vec<_> = settled.iter().map(|(_, n)| n.0).collect();
    nodes.sort_unstable();
    nodes.dedup();
    assert_eq!(nodes.len(), 24, "settlement nodes are distinct");

    // The trace carries real movement too, and it matches the outcome's
    // accounting: every individual traversal is a Move event and every
    // cohort hop is one CohortMove charging `members` rides.
    let solo_moves = trace.move_count() as u64;
    let ride_moves: u64 = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::CohortMove { members, .. } => Some(*members as u64),
            _ => None,
        })
        .sum();
    assert_eq!(solo_moves + ride_moves, report.outcome.total_moves);
}

#[test]
fn traced_run_outcome_is_identical_to_untraced() {
    let registry = Registry::builtin();
    for label in [
        "line/k16/rooted/sync/probe-dfs",
        "star/k12/rooted/async-lag3/probe-dfs",
        "ring/k16/scatter/sync/ks-dfs",
    ] {
        let spec = ScenarioSpec::from_label(label).unwrap();
        let plain = spec.run(&registry, 11).unwrap();
        let (traced, trace) = spec.run_traced(&registry, 11, DEFAULT_TRACE_CAP).unwrap();
        assert_eq!(plain.outcome, traced.outcome, "{label}");
        assert_eq!(plain.dispersed, traced.dispersed, "{label}");
        assert!(!trace.events().is_empty(), "{label} recorded nothing");
    }
}

#[test]
fn tiny_cap_truncates_instead_of_growing() {
    let registry = Registry::builtin();
    let spec = ScenarioSpec::new(GraphFamily::Line, 32, "probe-dfs").with_schedule(Schedule::Sync);
    let (report, trace) = spec.run_traced(&registry, 7, 5).unwrap();
    assert!(report.dispersed);
    assert_eq!(trace.events().len(), 5);
    assert!(trace.truncated());
}
