//! The SoA differential suite.
//!
//! The hot-path refactor rewrote the per-agent state of `probe-dfs`,
//! `sync-seeker` and `ks-dfs` from enum-of-structs `Vec<AgentState>` to
//! structure-of-arrays (tag byte + packed parallel fields) and moved the
//! rider/guest/prober lists into a reusable arena. The contract is
//! **byte-identical behavior**: same seed ⇒ same outcome, same final
//! positions, and the same traced event stream, event for event.
//!
//! This suite enforces the contract mechanically. The pre-refactor AoS
//! implementations are retained verbatim under `tests/soa_differential/`
//! (only compiled for this test target — the `#[cfg(test)]`-retention the
//! issue asks for, realized as test-only modules) and registered beside the
//! live ones under `ref-*` labels. Every spec in a pool mirroring the
//! invariant grid — all graph families × placements × schedules, plus the
//! dynamic-ring fault worlds — runs through *both* registrations with the
//! same seed, and the suite compares:
//!
//! 1. the full [`Outcome`] (rounds/steps/epochs, activations, moves, peak
//!    memory bits — `PartialEq` covers every field),
//! 2. the final position of every agent, and
//! 3. the traced `Move`/`CohortMove`/`Milestone` event stream, which
//!    observes every individual world mutation in order — "step for step".
//!
//! Crash worlds are not in the pool because none of the three refactored
//! algorithms declares `supports_crash` (the crash-tolerant `random-walk`
//! and `spacer` were not touched by the refactor).

#![cfg(not(any(feature = "inject-collision", feature = "inject-orphan")))]

mod soa_differential {
    // Verbatim pre-refactor copies: unused helpers (probe counters, alt
    // constructors) stay in place so the reference is a faithful snapshot.
    #![allow(dead_code)]
    pub mod ref_ks_dfs;
    pub mod ref_probe_dfs;
    pub mod ref_rooted_sync;
}

use disp_core::scenario::{AlgorithmFactory, ParamValue, Params, Registry, ScenarioSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_rng::mix;
use disp_sim::{AgentProtocol, AsyncRunner, Outcome, Placement, SyncRunner, TraceEvent, World};
use soa_differential::ref_ks_dfs::KsDfs as RefKsDfs;
use soa_differential::ref_probe_dfs::ProbeDfs as RefProbeDfs;
use soa_differential::ref_rooted_sync::{RootedSyncDisp as RefRootedSyncDisp, SyncConfig};

// ---------------------------------------------------------------------------
// Reference factories: identical capability declarations, `ref-` labels.
// ---------------------------------------------------------------------------

struct RefProbeDfsFactory;

impl AlgorithmFactory for RefProbeDfsFactory {
    fn label(&self) -> &'static str {
        "ref-probe-dfs"
    }

    fn supports_dynamic(&self) -> bool {
        true
    }

    fn build(&self, world: &World, _params: &Params, _seed: u64) -> Box<dyn AgentProtocol> {
        Box::new(RefProbeDfs::new(world))
    }
}

struct RefKsDfsFactory;

impl AlgorithmFactory for RefKsDfsFactory {
    fn label(&self) -> &'static str {
        "ref-ks-dfs"
    }

    fn supports_general(&self) -> bool {
        true
    }

    fn build(&self, world: &World, _params: &Params, seed: u64) -> Box<dyn AgentProtocol> {
        Box::new(RefKsDfs::with_seed(world, seed))
    }
}

struct RefSyncSeekerFactory;

impl AlgorithmFactory for RefSyncSeekerFactory {
    fn label(&self) -> &'static str {
        "ref-sync-seeker"
    }

    fn supports_async(&self) -> bool {
        false
    }

    fn default_params(&self) -> Params {
        Params::new()
            .set("wait", ParamValue::U64(1))
            .set("probers", ParamValue::U64(0))
    }

    fn build(&self, world: &World, params: &Params, _seed: u64) -> Box<dyn AgentProtocol> {
        let config = SyncConfig {
            wait_rounds: params.u64_or("wait", 1) as u32,
            max_probers: match params.u64_or("probers", 0) {
                0 => None,
                cap => Some(cap as usize),
            },
        };
        Box::new(RefRootedSyncDisp::with_config(world, config))
    }
}

fn registry() -> Registry {
    Registry::builtin()
        .with(RefProbeDfsFactory)
        .with(RefKsDfsFactory)
        .with(RefSyncSeekerFactory)
}

// ---------------------------------------------------------------------------
// Execution: ScenarioSpec::build + the exact runner wiring of
// ScenarioSpec::run, kept inline so the World (final positions) and the
// Trace survive the run.
// ---------------------------------------------------------------------------

const TRACE_CAP: usize = 1 << 20;

struct RunRecord {
    outcome: Outcome,
    positions: Vec<disp_graph::NodeId>,
    events: Vec<TraceEvent>,
    truncated: bool,
}

fn run_traced(spec: &ScenarioSpec, registry: &Registry, seed: u64) -> RunRecord {
    let (mut world, mut protocol) = spec.build(registry, seed).expect("pool specs are valid");
    world.enable_trace_with_cap(TRACE_CAP);
    let config = spec.run_config(&world);
    let (dynamics, crashes) = spec.build_faults(world.num_agents(), seed);
    let outcome = match spec.build_adversary(world.num_agents(), seed) {
        None => {
            let mut runner = SyncRunner::new(config);
            if let Some(d) = dynamics {
                runner = runner.with_dynamics(d);
            }
            if let Some(c) = crashes {
                runner = runner.with_crashes(c);
            }
            runner
                .run(&mut world, protocol.as_mut())
                .expect("pool runs must terminate")
        }
        Some(adversary) => {
            let mut runner = AsyncRunner::new(config, adversary);
            if let Some(d) = dynamics {
                runner = runner.with_dynamics(d);
            }
            if let Some(c) = crashes {
                runner = runner.with_crashes(c);
            }
            runner
                .run(&mut world, protocol.as_mut())
                .expect("pool runs must terminate")
        }
    };
    let trace = world.take_trace();
    RunRecord {
        outcome,
        positions: world.snapshot_positions(),
        events: trace.events().to_vec(),
        truncated: trace.truncated(),
    }
}

/// Run `spec` through the live algorithm and its `ref-` twin under the same
/// seed and assert the three-way identity (outcome, positions, events).
fn assert_identical(spec: &ScenarioSpec, registry: &Registry, seed: u64) {
    let live = run_traced(spec, registry, seed);
    let mut ref_spec = spec.clone();
    ref_spec.algorithm = format!("ref-{}", spec.algorithm);
    let reference = run_traced(&ref_spec, registry, seed);

    assert_eq!(
        live.outcome, reference.outcome,
        "{spec} seed {seed}: outcome diverged from the AoS reference"
    );
    assert_eq!(
        live.positions, reference.positions,
        "{spec} seed {seed}: final positions diverged from the AoS reference"
    );
    assert!(
        !live.truncated && !reference.truncated,
        "{spec} seed {seed}: trace cap too small for a step-for-step comparison"
    );
    // Event streams are compared index-by-index first so a divergence points
    // at the first differing step, not at a 10^5-line Debug dump.
    let n = live.events.len().min(reference.events.len());
    for i in 0..n {
        assert_eq!(
            live.events[i], reference.events[i],
            "{spec} seed {seed}: trace diverges at event {i}"
        );
    }
    assert_eq!(
        live.events.len(),
        reference.events.len(),
        "{spec} seed {seed}: trace lengths diverge after a common prefix of {n}"
    );
}

// ---------------------------------------------------------------------------
// The spec pool: the invariant grid's shape (families × placements ×
// schedules at k = 18, scattered starts at half occupancy) plus the
// dynamic-ring fault worlds for the one refactored algorithm that
// supports them.
// ---------------------------------------------------------------------------

fn pool(algorithm: &str) -> Vec<ScenarioSpec> {
    let families = [
        GraphFamily::Line,
        GraphFamily::Star,
        GraphFamily::RandomTree,
        GraphFamily::ErdosRenyi { avg_degree: 6.0 },
        GraphFamily::Torus,
        GraphFamily::Complete,
    ];
    let schedules = [
        Schedule::Sync,
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.6, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 3,
            seed: 0,
        },
        Schedule::AsyncTargeted { max_lag: 3 },
    ];
    let registry = registry();
    let mut specs = Vec::new();
    for family in families {
        for &placement in &Placement::all() {
            for schedule in schedules {
                let mut spec = ScenarioSpec::new(family, 18, algorithm)
                    .with_placement(placement)
                    .with_schedule(schedule);
                if !placement.is_rooted() {
                    spec = spec.with_occupancy(0.5);
                }
                if spec.validate(&registry).is_ok() {
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

fn assert_pool_identical(algorithm: &str, tag: u64) {
    let registry = registry();
    let specs = pool(algorithm);
    assert!(!specs.is_empty(), "empty pool for {algorithm}");
    for (i, spec) in specs.iter().enumerate() {
        for rep in 0..2u64 {
            let seed = mix(&[tag, i as u64, rep]);
            assert_identical(spec, &registry, seed);
        }
    }
}

#[test]
fn probe_dfs_matches_the_aos_reference_across_the_grid() {
    assert_pool_identical("probe-dfs", 0x50A0_0001);
}

#[test]
fn sync_seeker_matches_the_aos_reference_across_the_grid() {
    assert_pool_identical("sync-seeker", 0x50A0_0002);
}

#[test]
fn ks_dfs_matches_the_aos_reference_across_the_grid() {
    assert_pool_identical("ks-dfs", 0x50A0_0003);
}

#[test]
fn sync_seeker_matches_under_non_default_params() {
    // The seeker's wait/prober-cap knobs steer the leader down different
    // branches (capped pools, longer waits); cover them explicitly since
    // the grid pool only runs defaults.
    let registry = registry();
    for (wait, probers) in [(2u64, 0u64), (1, 3), (3, 2)] {
        let spec = ScenarioSpec::new(GraphFamily::RandomTree, 18, "sync-seeker")
            .with_param("probers", ParamValue::U64(probers))
            .with_param("wait", ParamValue::U64(wait));
        assert_identical(&spec, &registry, mix(&[0x50A0_0004, wait, probers]));
    }
}

#[test]
fn probe_dfs_matches_the_aos_reference_in_dynamic_ring_worlds() {
    // Fault worlds: one seeded ring edge down per round, restored the next
    // round, across the schedule families — the EdgeDown retry paths.
    let registry = registry();
    let schedules = [
        Schedule::Sync,
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.6, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 3,
            seed: 0,
        },
        Schedule::AsyncTargeted { max_lag: 3 },
    ];
    for (i, schedule) in schedules.into_iter().enumerate() {
        for rate in [1u64, 2] {
            let spec = ScenarioSpec::new(GraphFamily::Ring, 18, "probe-dfs")
                .with_schedule(schedule)
                .with_dynamic_ring(rate);
            if spec.validate(&registry).is_err() {
                continue;
            }
            for rep in 0..2u64 {
                let seed = mix(&[0x50A0_0005, i as u64, rate, rep]);
                assert_identical(&spec, &registry, seed);
            }
        }
    }
}

#[test]
fn larger_instances_match_too() {
    // One bigger instance per algorithm so packed-field widths (ports,
    // counters) are exercised beyond toy sizes.
    let registry = registry();
    for (algorithm, family) in [
        ("probe-dfs", GraphFamily::Line),
        ("sync-seeker", GraphFamily::Complete),
        ("ks-dfs", GraphFamily::Torus),
    ] {
        let spec = ScenarioSpec::new(family, 256, algorithm);
        assert_identical(&spec, &registry, mix(&[0x50A0_0006]));
    }
}
