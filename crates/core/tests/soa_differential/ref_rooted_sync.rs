//! Seeker-based synchronous dispersion (`Sync_Probe`, Algorithms 2 and 5–7).
//!
//! This protocol reproduces the *probing structure* of the paper's SYNC
//! algorithm `RootedSyncDisp`: at every DFS node the leader dispatches a pool
//! of **seekers** in parallel, one unprobed port each; each seeker makes a
//! round trip (optionally waiting a configurable number of rounds at the
//! neighbor, the paper's 6-round wait) and reports whether the neighbor
//! hosts a settler. With a pool of `p` seekers, `min{k, δ_w}` ports are
//! covered in `⌈min{k, δ_w}/p⌉` iterations of `O(1)` rounds each.
//!
//! **Fidelity note (see `DESIGN.md`).** The full Theorem 6.1 algorithm
//! additionally leaves ≥ ⌈k/3⌉ DFS-tree nodes empty (Algorithm 1, module
//! [`crate::empty_node`]) and covers them by oscillating settlers (module
//! [`crate::oscillation`]) so that the seeker pool never shrinks below
//! ⌈k/3⌉. This implementation settles an agent at every visited node
//! instead, so the pool shrinks as the DFS progresses: the measured time is
//! `O(k)` whenever node degrees stay below the remaining pool size and
//! degrades toward the `O(k log k)` of the DISC'24 baseline on high-degree
//! graphs. The empty-node selection and oscillation components are
//! implemented and verified separately; wiring them into this protocol is
//! the one fidelity gap of this reproduction (tracked in `EXPERIMENTS.md`).

use disp_graph::Port;
use disp_sim::{bits, ActivationCtx, AgentId, AgentProtocol, World};

/// Tuning knobs (also used by the ablation benches).
#[derive(Debug, Clone, Copy)]
pub struct SyncConfig {
    /// Rounds a seeker waits at the probed neighbor before returning. The
    /// paper uses 6 (needed when tree nodes can be empty and are covered by
    /// oscillating settlers); with every node settled, 1 suffices.
    pub wait_rounds: u32,
    /// Cap on the number of seekers dispatched per probe iteration
    /// (`None` = use every available unsettled agent, the default).
    pub max_probers: Option<usize>,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            wait_rounds: 1,
            max_probers: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GroupOrder {
    flip: bool,
    port: Port,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MoveIntent {
    Forward,
    Backtrack,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeekStage {
    Out,
    Waiting { left: u32, saw_settler: bool },
    Returned { saw_settler: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaderPhase {
    Decide,
    ProbeAssign,
    ProbeWait { assigned: u32 },
    SoloOut,
    SoloWait { left: u32, saw_settler: bool },
    SoloReturned { saw_settler: bool },
    Departing(MoveIntent),
    ArriveForward,
}

#[derive(Debug, Clone)]
enum AgentState {
    Follower {
        executed: bool,
    },
    Seeker {
        port: Port,
        pin: Option<Port>,
        stage: SeekStage,
    },
    Settled {
        parent_port: Option<Port>,
    },
    Leader {
        phase: LeaderPhase,
        group_size: usize,
        order: Option<GroupOrder>,
        arrival_pin: Option<Port>,
        checked: u32,
        next_empty: Option<Port>,
        solo_pin: Option<Port>,
    },
}

/// The seeker-probing SYNC dispersion protocol (rooted configurations).
#[derive(Debug)]
pub struct RootedSyncDisp {
    config: SyncConfig,
    states: Vec<AgentState>,
    ids: Vec<u32>,
    leader: AgentId,
    k: usize,
    max_degree: usize,
    settled_count: usize,
    max_probe_iterations: u32,
    current_probe_iterations: u32,
}

impl RootedSyncDisp {
    /// Build the protocol for a rooted world with default configuration.
    pub fn new(world: &World) -> Self {
        Self::with_config(world, SyncConfig::default())
    }

    /// Build the protocol with explicit tuning knobs.
    pub fn with_config(world: &World, config: SyncConfig) -> Self {
        let k = world.num_agents();
        let root = world.position(AgentId(0));
        assert!(
            (0..k).all(|i| world.position(AgentId(i as u32)) == root),
            "RootedSyncDisp handles rooted initial configurations"
        );
        let leader = AgentId(k as u32 - 1);
        let mut states = vec![AgentState::Follower { executed: false }; k];
        states[leader.index()] = AgentState::Leader {
            phase: LeaderPhase::Decide,
            group_size: k - 1,
            order: None,
            arrival_pin: None,
            checked: 0,
            next_empty: None,
            solo_pin: None,
        };
        RootedSyncDisp {
            config,
            states,
            ids: (1..=k as u32).collect(),
            leader,
            k,
            max_degree: world.graph().max_degree(),
            settled_count: 0,
            max_probe_iterations: 0,
            current_probe_iterations: 0,
        }
    }

    /// Largest number of probe iterations observed at a single node.
    pub fn max_probe_iterations(&self) -> u32 {
        self.max_probe_iterations
    }

    fn settler_here(&self, ctx: &ActivationCtx<'_>) -> Option<AgentId> {
        ctx.colocated_iter()
            .find(|a| matches!(self.states[a.index()], AgentState::Settled { .. }))
    }

    /// Settle `agent` and park it: settlers in this protocol are never
    /// recruited, so their activations are no-ops forever.
    fn settle(&mut self, ctx: &mut ActivationCtx<'_>, agent: AgentId, parent_port: Option<Port>) {
        self.states[agent.index()] = AgentState::Settled { parent_port };
        self.settled_count += 1;
        ctx.park(agent);
    }

    fn followers_here(&self, ctx: &ActivationCtx<'_>) -> Vec<AgentId> {
        let mut v: Vec<AgentId> = ctx
            .colocated_iter()
            .filter(|a| matches!(self.states[a.index()], AgentState::Follower { .. }))
            .collect();
        v.sort_by_key(|a| self.ids[a.index()]);
        v
    }

    fn returned_seekers(&self, ctx: &ActivationCtx<'_>) -> Vec<AgentId> {
        ctx.colocated_iter()
            .filter(|a| {
                matches!(
                    self.states[a.index()],
                    AgentState::Seeker {
                        stage: SeekStage::Returned { .. },
                        ..
                    }
                )
            })
            .collect()
    }

    #[allow(clippy::too_many_lines)]
    fn act_leader(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Leader {
            phase,
            mut group_size,
            mut order,
            mut arrival_pin,
            mut checked,
            mut next_empty,
            mut solo_pin,
        } = self.states[agent.index()].clone()
        else {
            unreachable!()
        };
        let mut phase = phase;

        match phase {
            LeaderPhase::Decide => {
                if self.settler_here(ctx).is_none() {
                    if group_size == 0 {
                        self.settle(ctx, agent, arrival_pin);
                        return;
                    }
                    let chosen = self.followers_here(ctx)[0];
                    self.settle(ctx, chosen, arrival_pin);
                    group_size -= 1;
                } else {
                    checked = 0;
                    next_empty = None;
                    self.current_probe_iterations = 0;
                    phase = LeaderPhase::ProbeAssign;
                }
            }

            LeaderPhase::ProbeAssign => {
                if next_empty.is_some() || checked as usize >= ctx.degree() {
                    phase = self.movement_phase(ctx, next_empty, &mut order);
                } else {
                    self.current_probe_iterations += 1;
                    self.max_probe_iterations =
                        self.max_probe_iterations.max(self.current_probe_iterations);
                    let mut pool = self.followers_here(ctx);
                    if let Some(cap) = self.config.max_probers {
                        pool.truncate(cap.max(1));
                    }
                    if pool.is_empty() {
                        // Leader probes the next port itself.
                        let port = Port(checked + 1);
                        solo_pin = Some(ctx.move_via(port));
                        phase = LeaderPhase::SoloOut;
                    } else {
                        let want = (ctx.degree() - checked as usize).min(pool.len());
                        for (i, seeker) in pool.iter().take(want).enumerate() {
                            self.states[seeker.index()] = AgentState::Seeker {
                                port: Port(checked + 1 + i as u32),
                                pin: None,
                                stage: SeekStage::Out,
                            };
                        }
                        checked += want as u32;
                        phase = LeaderPhase::ProbeWait {
                            assigned: want as u32,
                        };
                    }
                }
            }

            LeaderPhase::ProbeWait { assigned } => {
                let returned = self.returned_seekers(ctx);
                if returned.len() as u32 == assigned {
                    let flip = order.map(|o| o.flip).unwrap_or(false);
                    for s in returned {
                        let AgentState::Seeker {
                            port,
                            stage: SeekStage::Returned { saw_settler },
                            ..
                        } = self.states[s.index()].clone()
                        else {
                            unreachable!()
                        };
                        if !saw_settler {
                            next_empty = Some(match next_empty {
                                Some(p) if p < port => p,
                                _ => port,
                            });
                        }
                        self.states[s.index()] = AgentState::Follower { executed: flip };
                    }
                    phase = LeaderPhase::ProbeAssign;
                }
            }

            LeaderPhase::SoloOut => {
                let saw = self.settler_here(ctx).is_some();
                phase = LeaderPhase::SoloWait {
                    left: self.config.wait_rounds,
                    saw_settler: saw,
                };
            }

            LeaderPhase::SoloWait { left, saw_settler } => {
                let saw = saw_settler || self.settler_here(ctx).is_some();
                if left == 0 {
                    ctx.move_via(solo_pin.expect("solo pin recorded"));
                    phase = LeaderPhase::SoloReturned { saw_settler: saw };
                } else {
                    phase = LeaderPhase::SoloWait {
                        left: left - 1,
                        saw_settler: saw,
                    };
                }
            }

            LeaderPhase::SoloReturned { saw_settler } => {
                if !saw_settler {
                    next_empty = Some(Port(checked + 1));
                }
                checked += 1;
                solo_pin = None;
                phase = LeaderPhase::ProbeAssign;
            }

            LeaderPhase::Departing(intent) => {
                let o = order.expect("departing without an order");
                if self.followers_here(ctx).is_empty() {
                    let pin = ctx.move_via(o.port);
                    arrival_pin = Some(pin);
                    phase = match intent {
                        MoveIntent::Forward => LeaderPhase::ArriveForward,
                        MoveIntent::Backtrack => LeaderPhase::Decide,
                    };
                }
            }

            LeaderPhase::ArriveForward => {
                debug_assert!(self.settler_here(ctx).is_none());
                if group_size == 0 {
                    self.settle(ctx, agent, arrival_pin);
                    return;
                }
                let chosen = self.followers_here(ctx)[0];
                self.settle(ctx, chosen, arrival_pin);
                group_size -= 1;
                phase = LeaderPhase::Decide;
            }
        }

        self.states[agent.index()] = AgentState::Leader {
            phase,
            group_size,
            order,
            arrival_pin,
            checked,
            next_empty,
            solo_pin,
        };
    }

    fn movement_phase(
        &mut self,
        ctx: &ActivationCtx<'_>,
        next_empty: Option<Port>,
        order: &mut Option<GroupOrder>,
    ) -> LeaderPhase {
        let flip = order.map(|o| !o.flip).unwrap_or(true);
        match next_empty {
            Some(p) => {
                *order = Some(GroupOrder { flip, port: p });
                LeaderPhase::Departing(MoveIntent::Forward)
            }
            None => {
                let settler = self
                    .settler_here(ctx)
                    .expect("backtracking from a settled node");
                let AgentState::Settled { parent_port } = self.states[settler.index()] else {
                    unreachable!()
                };
                let p =
                    parent_port.expect("the DFS root can only be exhausted after everyone settled");
                *order = Some(GroupOrder { flip, port: p });
                LeaderPhase::Departing(MoveIntent::Backtrack)
            }
        }
    }

    fn act_follower(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Follower { executed } = self.states[agent.index()] else {
            unreachable!()
        };
        if ctx.colocated_iter().any(|peer| peer == self.leader) {
            if let AgentState::Leader { order: Some(o), .. } = self.states[self.leader.index()] {
                if o.flip != executed {
                    ctx.move_via(o.port);
                    self.states[agent.index()] = AgentState::Follower { executed: o.flip };
                }
            }
        }
    }

    fn act_seeker(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Seeker {
            port,
            mut pin,
            stage,
        } = self.states[agent.index()].clone()
        else {
            unreachable!()
        };
        let mut stage = stage;
        match stage {
            SeekStage::Out => {
                pin = Some(ctx.move_via(port));
                stage = SeekStage::Waiting {
                    left: self.config.wait_rounds,
                    saw_settler: false,
                };
            }
            SeekStage::Waiting { left, saw_settler } => {
                let saw = saw_settler || self.settler_here(ctx).is_some();
                if left == 0 {
                    ctx.move_via(pin.expect("pin recorded"));
                    stage = SeekStage::Returned { saw_settler: saw };
                } else {
                    stage = SeekStage::Waiting {
                        left: left - 1,
                        saw_settler: saw,
                    };
                }
            }
            SeekStage::Returned { .. } => {}
        }
        self.states[agent.index()] = AgentState::Seeker { port, pin, stage };
    }
}

impl AgentProtocol for RootedSyncDisp {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        match self.states[agent.index()] {
            AgentState::Settled { .. } => {}
            AgentState::Leader { .. } => self.act_leader(agent, ctx),
            AgentState::Follower { .. } => self.act_follower(agent, ctx),
            AgentState::Seeker { .. } => self.act_seeker(agent, ctx),
        }
    }

    fn is_terminated(&self) -> bool {
        self.settled_count == self.k
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        matches!(self.states[agent.index()], AgentState::Settled { .. })
    }

    fn memory_bits(&self, agent: AgentId) -> usize {
        let id = bits::id_bits(self.k);
        let port = bits::port_bits(self.max_degree);
        let opt_port = bits::opt_port_bits(self.max_degree);
        match &self.states[agent.index()] {
            AgentState::Follower { .. } => id + 1,
            AgentState::Seeker { .. } => id + 2 + port + opt_port + bits::counter_bits(8) + 1,
            AgentState::Settled { .. } => id + opt_port,
            AgentState::Leader { .. } => {
                id + 3
                    + bits::counter_bits(self.k as u64)
                    + 1
                    + port
                    + 2 * opt_port
                    + bits::counter_bits(self.max_degree as u64)
                    + opt_port
                    + opt_port
            }
        }
    }

    fn name(&self) -> &'static str {
        "rooted-sync-seeker"
    }
}
