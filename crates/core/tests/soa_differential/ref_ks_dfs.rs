//! The OPODIS'21-style group-DFS dispersion baseline (`O(min{m, kΔ})` time,
//! `O(log(k+Δ))` bits per agent), usable under both the SYNC and ASYNC
//! schedulers.
//!
//! ## Algorithm
//!
//! All unsettled agents that started on the same node travel together as a
//! *group* led by the largest-ID agent among them. At every node the group
//! visits for the first time, the smallest-ID unsettled member settles and
//! becomes the node's *settler*; the settler stores the port back to its DFS
//! parent and a scan cursor over its remaining ports. The group then examines
//! the settler's ports one at a time: it moves to the neighbor, settles an
//! agent there if the neighbor is free, and otherwise returns and advances
//! the cursor. When a node's ports are exhausted the group backtracks to the
//! parent. The traversal therefore charges `O(1)` group moves per examined
//! edge, i.e. `O(min{m, kΔ})` time overall.
//!
//! ## General initial configurations
//!
//! Multiple groups (one per initially-occupied node) run their DFSs
//! concurrently and treat *any* settled agent — of any group — as an occupied
//! node. This replaces the size-based subsumption of Kshemkalyani–Sharma with
//! a simpler scheme (documented in `DESIGN.md`): if a group exhausts its DFS
//! with members still unsettled (it got boxed into a "pocket" of occupied
//! nodes), the leftover members switch to *scatter mode* — independent seeded
//! random walks that settle on the first free node found. Scatter mode keeps
//! the algorithm correct on every input; its time is measured empirically
//! rather than bounded analytically.
//!
//! ## Group movement protocol
//!
//! The leader never outruns its followers: it publishes a move order (a port
//! plus a flip bit), waits until every follower has executed it and left the
//! node, and only then moves itself. This costs a small constant factor over
//! the paper's idealized counting and works identically under asynchronous
//! activation.

use disp_graph::Port;
use disp_sim::{bits, ActivationCtx, AgentId, AgentProtocol, World};

/// A published group move order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GroupOrder {
    /// Flips every time a new order is published.
    flip: bool,
    /// The port every follower must take.
    port: Port,
}

/// Why the leader is moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MoveIntent {
    /// Moving to an unexamined neighbor to check whether it is free.
    Scan,
    /// Returning to the DFS node after finding the neighbor occupied.
    Return,
    /// Backtracking to the DFS parent.
    Backtrack,
}

/// Leader control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaderPhase {
    /// At a node with the whole group; ready to decide the next action.
    Decide,
    /// Order published; waiting for all followers to leave, then move with
    /// the given intent.
    Departing(MoveIntent),
    /// Arrived at a scan target; decide whether to settle here or go back.
    CheckNeighbor,
}

/// Per-agent persistent state.
#[derive(Debug, Clone)]
enum AgentState {
    /// Travels with its leader, executing published orders.
    Follower {
        /// Simulator id of this agent's leader.
        leader: AgentId,
        /// Flip bit of the last executed order.
        executed: bool,
    },
    /// Runs the DFS for its group.
    Leader {
        phase: LeaderPhase,
        /// Number of unsettled followers in the group (leader excluded).
        group_size: usize,
        /// Currently published order, if any.
        order: Option<GroupOrder>,
        /// Port back to the DFS node while checking a neighbor.
        return_port: Option<Port>,
        /// `pin` recorded on the last move (parent port for a new settler).
        arrival_pin: Option<Port>,
        /// Algorithmic label of this group's tree (the leader's ID).
        treelabel: u32,
    },
    /// Settled at its node; stores the DFS bookkeeping for that node.
    Settled {
        parent_port: Option<Port>,
        /// Next port (1-based) to examine from this node.
        next_port: u32,
        treelabel: u32,
    },
    /// Scatter mode: random walk, settle at the first free node.
    Scatter {
        /// Small xorshift state, seeded per agent.
        rng: u64,
    },
}

/// The group-DFS baseline protocol (rooted and general configurations).
#[derive(Debug)]
pub struct KsDfs {
    states: Vec<AgentState>,
    /// Algorithmic IDs (index + 1 by default).
    ids: Vec<u32>,
    k: usize,
    max_degree: usize,
    settled_count: usize,
    scatter_seed: u64,
}

impl KsDfs {
    /// Build the protocol for the given world. One group is formed per
    /// initially-occupied node, led by the largest-ID agent on that node.
    pub fn new(world: &World) -> Self {
        Self::with_seed(world, 0xD15F_ECE5)
    }

    /// Like [`KsDfs::new`] with an explicit seed for the scatter-mode RNG.
    pub fn with_seed(world: &World, scatter_seed: u64) -> Self {
        let k = world.num_agents();
        let ids: Vec<u32> = (0..k as u32).map(|i| i + 1).collect();
        let mut states: Vec<Option<AgentState>> = vec![None; k];
        for v in world.graph().nodes() {
            let here: Vec<AgentId> = world.agents_at(v).collect();
            if here.is_empty() {
                continue;
            }
            let leader = *here.iter().max().expect("non-empty");
            for &a in &here {
                if a == leader {
                    states[a.index()] = Some(AgentState::Leader {
                        phase: LeaderPhase::Decide,
                        group_size: here.len() - 1,
                        order: None,
                        return_port: None,
                        arrival_pin: None,
                        treelabel: ids[leader.index()],
                    });
                } else {
                    states[a.index()] = Some(AgentState::Follower {
                        leader,
                        executed: false,
                    });
                }
            }
        }
        KsDfs {
            states: states
                .into_iter()
                .map(|s| s.expect("every agent grouped"))
                .collect(),
            ids,
            k,
            max_degree: world.graph().max_degree(),
            settled_count: 0,
            scatter_seed,
        }
    }

    /// Number of settled agents so far.
    pub fn settled_count(&self) -> usize {
        self.settled_count
    }

    /// Whether any agent had to fall back to scatter mode (pocket case).
    pub fn used_scatter_fallback(&self) -> bool {
        self.states
            .iter()
            .any(|s| matches!(s, AgentState::Scatter { .. }))
    }

    fn settler_at(&self, ctx: &ActivationCtx<'_>) -> Option<AgentId> {
        ctx.colocated_iter()
            .find(|a| matches!(self.states[a.index()], AgentState::Settled { .. }))
    }

    /// Smallest-ID co-located follower of `leader` (unsettled group member).
    fn smallest_follower_here(&self, ctx: &ActivationCtx<'_>, leader: AgentId) -> Option<AgentId> {
        ctx.colocated_iter()
            .filter(|a| {
                matches!(self.states[a.index()], AgentState::Follower { leader: l, .. } if l == leader)
            })
            .min_by_key(|a| self.ids[a.index()])
    }

    fn followers_here(&self, ctx: &ActivationCtx<'_>, leader: AgentId) -> usize {
        ctx.colocated_iter()
            .filter(|a| {
                matches!(self.states[a.index()], AgentState::Follower { leader: l, .. } if l == leader)
            })
            .count()
    }

    /// Settle `agent` and park it: a settled agent's activations are no-ops
    /// forever (its scan cursor is mutated passively by visiting leaders).
    fn settle(
        &mut self,
        ctx: &mut ActivationCtx<'_>,
        agent: AgentId,
        parent_port: Option<Port>,
        treelabel: u32,
    ) {
        self.states[agent.index()] = AgentState::Settled {
            parent_port,
            next_port: 1,
            treelabel,
        };
        self.settled_count += 1;
        ctx.park(agent);
    }

    fn act_leader(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Leader {
            phase,
            group_size,
            order,
            return_port,
            arrival_pin,
            treelabel,
        } = self.states[agent.index()].clone()
        else {
            unreachable!("act_leader on non-leader");
        };
        let mut phase = phase;
        let mut group_size = group_size;
        let mut order = order;
        let mut return_port = return_port;
        let mut arrival_pin = arrival_pin;

        match phase {
            LeaderPhase::Decide => {
                let settler = self.settler_at(ctx);
                match settler {
                    None => {
                        // First visit of this node by anyone: settle here.
                        if group_size == 0 {
                            // The leader is the last unsettled member.
                            self.settle(ctx, agent, arrival_pin, treelabel);
                            return;
                        }
                        let chosen = self
                            .smallest_follower_here(ctx, agent)
                            .expect("group_size > 0 implies a co-located follower");
                        self.settle(ctx, chosen, arrival_pin, treelabel);
                        group_size -= 1;
                        // Stay in Decide: the settler now exists and scanning
                        // starts at the next activation.
                    }
                    Some(settler) => {
                        // Scan the settler's ports. The DFS bookkeeping lives
                        // in the settler (legal: it is co-located).
                        let (parent_port, mut next_port, s_label) =
                            match self.states[settler.index()] {
                                AgentState::Settled {
                                    parent_port,
                                    next_port,
                                    treelabel,
                                } => (parent_port, next_port, treelabel),
                                _ => unreachable!(),
                            };
                        if s_label != treelabel {
                            // Another group's DFS settled this node before we
                            // could (under ASYNC a foreign scan can reach our
                            // home node before our leader's first
                            // activation). The whole group must fall back
                            // together: scattering only the leader would
                            // strand its followers waiting for orders from a
                            // leader that no longer exists.
                            self.scatter_group(agent, ctx);
                            return;
                        }
                        // Skip the parent port in the scan.
                        if Some(Port(next_port)) == parent_port {
                            next_port += 1;
                        }
                        if next_port as usize > ctx.degree() {
                            // Node exhausted: backtrack, or finish/fallback at
                            // the root.
                            match parent_port {
                                Some(p) => {
                                    order = Some(GroupOrder {
                                        flip: order.map(|o| !o.flip).unwrap_or(true),
                                        port: p,
                                    });
                                    phase = LeaderPhase::Departing(MoveIntent::Backtrack);
                                }
                                None => {
                                    // Root exhausted with members left: the
                                    // group is boxed in ("pocket"); fall back
                                    // to scatter mode for the remaining
                                    // members (including the leader).
                                    self.scatter_group(agent, ctx);
                                    return;
                                }
                            }
                        } else {
                            // Examine the neighbor behind `next_port`.
                            if let AgentState::Settled { next_port: np, .. } =
                                &mut self.states[settler.index()]
                            {
                                *np = next_port + 1;
                            }
                            order = Some(GroupOrder {
                                flip: order.map(|o| !o.flip).unwrap_or(true),
                                port: Port(next_port),
                            });
                            phase = LeaderPhase::Departing(MoveIntent::Scan);
                        }
                    }
                }
            }
            LeaderPhase::Departing(intent) => {
                let o = order.expect("departing without an order");
                if self.followers_here(ctx, agent) == 0 {
                    // All followers executed the order; follow them.
                    let pin = ctx.move_via(o.port);
                    arrival_pin = Some(pin);
                    match intent {
                        MoveIntent::Scan => {
                            return_port = Some(pin);
                            phase = LeaderPhase::CheckNeighbor;
                        }
                        MoveIntent::Return | MoveIntent::Backtrack => {
                            phase = LeaderPhase::Decide;
                        }
                    }
                }
                // else: keep waiting for stragglers.
            }
            LeaderPhase::CheckNeighbor => {
                let rp = return_port.expect("checking a neighbor without a return port");
                if self.settler_at(ctx).is_some() {
                    // Occupied: go back and try the next port.
                    order = Some(GroupOrder {
                        flip: order.map(|o| !o.flip).unwrap_or(true),
                        port: rp,
                    });
                    phase = LeaderPhase::Departing(MoveIntent::Return);
                } else {
                    // Free node: settle here (forward move of the DFS).
                    if group_size == 0 {
                        self.settle(ctx, agent, Some(rp), treelabel);
                        return;
                    }
                    let chosen = self
                        .smallest_follower_here(ctx, agent)
                        .expect("group_size > 0 implies a co-located follower");
                    self.settle(ctx, chosen, Some(rp), treelabel);
                    group_size -= 1;
                    phase = LeaderPhase::Decide;
                }
            }
        }

        self.states[agent.index()] = AgentState::Leader {
            phase,
            group_size,
            order,
            return_port,
            arrival_pin,
            treelabel,
        };
    }

    /// Switch the whole co-located group (leader included) to scatter mode.
    fn scatter_group(&mut self, leader: AgentId, ctx: &ActivationCtx<'_>) {
        let members: Vec<AgentId> = ctx.colocated_iter()
            .filter(|a| {
                matches!(self.states[a.index()], AgentState::Follower { leader: l, .. } if l == leader)
            })
            .collect();
        for a in members {
            self.states[a.index()] = AgentState::Scatter {
                rng: self.scatter_seed
                    ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(a.index() as u64 + 1)),
            };
        }
        self.states[leader.index()] = AgentState::Scatter {
            rng: self.scatter_seed
                ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(leader.index() as u64 + 1)),
        };
    }

    fn act_follower(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Follower { leader, executed } = self.states[agent.index()] else {
            unreachable!();
        };
        // Execute the leader's published order, if a fresh one is visible.
        if ctx.colocated_iter().any(|peer| peer == leader) {
            if let AgentState::Leader { order: Some(o), .. } = self.states[leader.index()] {
                if o.flip != executed {
                    ctx.move_via(o.port);
                    self.states[agent.index()] = AgentState::Follower {
                        leader,
                        executed: o.flip,
                    };
                }
            }
        }
    }

    fn act_scatter(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Scatter { mut rng } = self.states[agent.index()] else {
            unreachable!();
        };
        // If the current node is free of settlers, settle here (activation
        // order breaks ties between walkers arriving in the same round).
        if self.settler_at(ctx).is_none() {
            self.settle(ctx, agent, None, self.ids[agent.index()]);
            return;
        }
        // Otherwise take a pseudo-random step (xorshift64*).
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let d = ctx.degree();
        if d > 0 {
            let port = Port((rng % d as u64) as u32 + 1);
            ctx.move_via(port);
        }
        self.states[agent.index()] = AgentState::Scatter { rng };
    }
}

impl AgentProtocol for KsDfs {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        match self.states[agent.index()] {
            AgentState::Settled { .. } => {}
            AgentState::Leader { .. } => self.act_leader(agent, ctx),
            AgentState::Follower { .. } => self.act_follower(agent, ctx),
            AgentState::Scatter { .. } => self.act_scatter(agent, ctx),
        }
    }

    fn is_terminated(&self) -> bool {
        self.settled_count == self.k
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        matches!(self.states[agent.index()], AgentState::Settled { .. })
    }

    fn memory_bits(&self, agent: AgentId) -> usize {
        let id = bits::id_bits(self.k);
        let port = bits::port_bits(self.max_degree);
        match &self.states[agent.index()] {
            AgentState::Follower { .. } => id + id + bits::flag_bits(),
            AgentState::Leader { .. } => {
                // phase tag + group size counter + order (flag+port) +
                // return/arrival ports + treelabel + own id.
                id + 3
                    + bits::counter_bits(self.k as u64)
                    + bits::flag_bits()
                    + bits::opt_port_bits(self.max_degree)
                    + 2 * bits::opt_port_bits(self.max_degree)
                    + id
            }
            AgentState::Settled { .. } => id + bits::opt_port_bits(self.max_degree) + port + 1 + id,
            AgentState::Scatter { .. } => id + 64,
        }
    }

    fn name(&self) -> &'static str {
        "ks-dfs"
    }
}
