//! Doubling-probe DFS dispersion: the paper's `RootedAsyncDisp`
//! (Algorithm 8, built from `Async_Probe` = Algorithm 3 and
//! `Guest_See_Off` = Algorithm 4, Theorem 7.1).
//!
//! Run under the ASYNC scheduler this is the paper's `O(k log k)`-epoch,
//! `O(log(k+Δ))`-bit rooted dispersion algorithm. Run under the SYNC
//! scheduler the very same protocol reproduces the Sudo et al. [DISC'24]
//! style doubling-probe baseline (`O(k log k)` rounds), which is what the
//! paper extends to asynchrony.
//!
//! ## How probing works
//!
//! The group (leader `a_max` plus the unsettled followers) sits at a DFS node
//! `w` whose settler `α(w)` stays put. To find a fully-unsettled neighbor:
//!
//! 1. The leader assigns one unprobed port each to the available helpers
//!    (unsettled followers plus *guests* — settlers recruited from already
//!    probed neighbors). Each helper makes a round trip through its port.
//! 2. A helper that finds a settler at the neighbor recruits it: the settler
//!    walks to `w` and becomes a guest (remembering the port of `w` it came
//!    in through, so it can go home later). A helper that finds no settler
//!    reports the port as leading to a fully-unsettled node.
//! 3. Every completed iteration without a hit doubles the helper pool, so at
//!    most `O(log min{k, δ_w})` iterations (2 epochs each) are needed.
//! 4. Before the DFS moves on, `Guest_See_Off` sends every guest home in
//!    `O(log k)` halving rounds: guests are paired, each pair walks to the
//!    first guest's home, the second guest confirms the first arrived and
//!    returns; a single leftover guest is escorted by `α(w)` itself.
//!
//! Waiting until guests are confirmed home is what makes the probe results
//! trustworthy under asynchrony (paper §4.3): a node reported empty really
//! is fully unsettled, never the momentarily-vacant home of a helper.
//!
//! ## Flat-state execution
//!
//! This implementation rides the follower group in a world *cohort* (see
//! `disp_sim::world`): followers are enrolled as passengers, the leader
//! moves the whole group with one O(1) cohort move per edge, and followers
//! are extracted only to settle or to serve as probers. Settled agents and
//! idle guests are parked off the runners' worklist and woken exactly when
//! another agent's action makes them actionable (a recruit, a probe
//! assignment, a see-off order). The realized schedule is the one where
//! every follower executes the leader's movement order immediately — a
//! legal refinement of the flip-order movement protocol under both
//! schedulers (`DESIGN.md` §8). The protocol also keeps a per-node settler
//! index (`settled_at`), a simulation-level cache of the locally-observable
//! "does this node host a settled agent" query that every visit is entitled
//! to make; it turns the O(occupants) co-location scans of the old
//! implementation into O(1) lookups.
//!
//! This protocol assumes a **rooted** initial configuration (all agents on
//! one node); see `DESIGN.md` for how general configurations are handled.
//!
//! ## Dynamic-graph hardening
//!
//! Every move goes through the fallible [`ActivationCtx::try_move_via`] /
//! [`ActivationCtx::try_move_cohort_via`] path: when the dynamic adversary
//! has the chosen edge down ([`MoveError::EdgeDown`]), the agent simply
//! stays in its current stage and retries on its next activation — no state
//! advances, so when the edge returns (one round later, in the
//! arXiv 2408.12220 model) the walk resumes exactly where it stalled. This
//! is what lets the registry declare `supports_dynamic` for `probe-dfs`.

use disp_graph::Port;
use disp_sim::{bits, ActivationCtx, AgentId, AgentProtocol, MoveError, World};

const NO_SETTLER: u32 = u32::MAX;

/// Attempt a move; `None` means the edge is down — wait in place and retry
/// on the next activation. Any other failure is a protocol bug.
fn try_move(ctx: &mut ActivationCtx<'_>, port: Port) -> Option<Port> {
    match ctx.try_move_via(port) {
        Ok(pin) => Some(pin),
        Err(MoveError::EdgeDown { .. }) => None,
        Err(e) => panic!("illegal probe-dfs move: {e}"),
    }
}

/// Milestone code recorded (when tracing is enabled) each time an agent
/// settles: exactly `k` of these fire in a dispersing run, one per agent,
/// at the node it ends on. Unsettling (a settler recruited as a guest and
/// later re-settled) records the code again at the new settlement.
pub const MILESTONE_SETTLED: u32 = 1;

/// Stages of a helper's probe round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeStage {
    /// Assigned; has not left `w` yet.
    Out,
    /// At the neighbor; decide whether to recruit its settler.
    AtNeighbor,
    /// Waiting for the recruited settler to depart for `w`.
    WaitGuestGone { recruited: AgentId },
    /// Walking back to `w`.
    GoHome { found_settler: bool },
    /// Back at `w`, parked until the leader collects the report.
    Returned { found_settler: bool },
}

/// What a prober reverts to once the leader collects its report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProberOrigin {
    Follower,
    Guest {
        home_port: Port,
        saved_parent_port: Option<Port>,
    },
}

/// Travel status of a recruited settler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuestTravel {
    /// Ordered to walk to the probe site through this port of its home.
    ToProbeSite { via: Port },
    /// At the probe site; `home_port` is the port of the probe site leading
    /// back to its home node.
    Idle { home_port: Port },
    /// Ordered home (see-off).
    GoingHome { via: Port },
}

/// Stages of an escorting agent during `Guest_See_Off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EscortStage {
    Going,
    AtPartnerHome,
    Returned,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaderPhase {
    /// First activation: enroll every follower into the cohort.
    Enroll,
    /// At a DFS node with the group; start probing (or settle at the start).
    Decide,
    /// Assign ports to available helpers (or probe solo).
    ProbeAssign,
    /// Wait for all assigned probers of this iteration to return.
    ProbeWait { assigned: u32 },
    /// Leader probing alone: on the way out.
    SoloOut,
    /// Leader probing alone: at the neighbor.
    SoloAtNeighbor,
    /// Leader probing alone: waiting for the recruited settler to leave.
    SoloWaitGuestGone { recruited: AgentId },
    /// Leader probing alone: walking back.
    SoloReturn { found_settler: bool },
    /// Dispatch one halving round of `Guest_See_Off`.
    SeeOffAssign,
    /// Wait for this halving round's escorts to come back.
    SeeOffWait { expect_idle: u32 },
    /// The node's own settler is escorting the last guest home; wait for it.
    SeeOffWaitSettler,
    /// Arrived at a fully-unsettled node: settle an agent there.
    ArriveForward,
}

#[derive(Debug, Clone)]
enum AgentState {
    /// An unsettled follower riding the leader's cohort (parked; its
    /// observable behaviour — follow every movement order — is realized by
    /// the cohort ride).
    Rider,
    Prober {
        origin: ProberOrigin,
        port: Port,
        pin: Option<Port>,
        stage: ProbeStage,
    },
    Guest {
        saved_parent_port: Option<Port>,
        travel: GuestTravel,
    },
    /// A guest escorting another guest home (or `α(w)` doing the same for the
    /// final leftover guest).
    Escort {
        /// What to restore on return: `None` means "this is the node settler
        /// α(w); restore Settled at the probe site", otherwise the guest data.
        guest_self: Option<(Port, Option<Port>)>,
        saved_parent_port: Option<Port>,
        via: Port,
        pin: Option<Port>,
        stage: EscortStage,
    },
    Settled {
        parent_port: Option<Port>,
    },
    Leader {
        phase: LeaderPhase,
        arrival_pin: Option<Port>,
        /// Ports of the current node probed so far.
        checked: u32,
        /// Smallest port found to lead to a fully-unsettled node.
        next_empty: Option<Port>,
        /// Solo-probe bookkeeping.
        solo_pin: Option<Port>,
    },
}

/// The doubling-probe dispersion protocol (rooted configurations).
#[derive(Debug)]
pub struct ProbeDfs {
    states: Vec<AgentState>,
    ids: Vec<u32>,
    k: usize,
    max_degree: usize,
    settled_count: usize,
    /// Unsettled followers riding the cohort, sorted descending by
    /// algorithmic id (`pop()` yields the smallest).
    riders: Vec<AgentId>,
    /// Guests idle at the current probe node, sorted ascending by id.
    idle_guests: Vec<AgentId>,
    /// Probers back at the probe node, awaiting collection by the leader.
    returned_probers: Vec<AgentId>,
    /// `node → settler agent` cache (see the module docs).
    settled_at: Vec<u32>,
    /// Counts `Async_Probe` invocations (one per `Decide`), for tests.
    probe_invocations: u64,
    /// Largest number of probe iterations within a single invocation.
    max_probe_iterations: u32,
    current_probe_iterations: u32,
}

impl ProbeDfs {
    /// Build the protocol for a rooted world (all agents on one node).
    pub fn new(world: &World) -> Self {
        let k = world.num_agents();
        let root = world.position(AgentId(0));
        assert!(
            (0..k).all(|i| world.position(AgentId(i as u32)) == root),
            "ProbeDfs handles rooted initial configurations; use KsDfs or the general wrappers for scattered starts"
        );
        let leader = AgentId(k as u32 - 1);
        let mut states = vec![AgentState::Rider; k];
        states[leader.index()] = AgentState::Leader {
            phase: LeaderPhase::Enroll,
            arrival_pin: None,
            checked: 0,
            next_empty: None,
            solo_pin: None,
        };
        ProbeDfs {
            states,
            ids: (1..=k as u32).collect(),
            k,
            max_degree: world.graph().max_degree(),
            settled_count: 0,
            riders: (0..k as u32 - 1).rev().map(AgentId).collect(),
            idle_guests: Vec::new(),
            returned_probers: Vec::new(),
            settled_at: vec![NO_SETTLER; world.graph().num_nodes()],
            probe_invocations: 0,
            max_probe_iterations: 0,
            current_probe_iterations: 0,
        }
    }

    /// Number of `Async_Probe` invocations so far (≤ 2(k-1) by Theorem 7.1's
    /// accounting).
    pub fn probe_invocations(&self) -> u64 {
        self.probe_invocations
    }

    /// Largest number of doubling iterations observed within one probe
    /// invocation (should stay `O(log min{k, Δ})`).
    pub fn max_probe_iterations(&self) -> u32 {
        self.max_probe_iterations
    }

    fn settler_here(&self, ctx: &ActivationCtx<'_>) -> Option<AgentId> {
        match self.settled_at[ctx.node().index()] {
            NO_SETTLER => None,
            a => Some(AgentId(a)),
        }
    }

    fn settle(&mut self, ctx: &mut ActivationCtx<'_>, agent: AgentId, parent_port: Option<Port>) {
        self.states[agent.index()] = AgentState::Settled { parent_port };
        self.settled_at[ctx.node().index()] = agent.0;
        self.settled_count += 1;
        ctx.milestone(agent, MILESTONE_SETTLED);
        ctx.park(agent);
    }

    fn unsettle(&mut self, ctx: &mut ActivationCtx<'_>, settler: AgentId) -> Option<Port> {
        let AgentState::Settled { parent_port } = self.states[settler.index()] else {
            unreachable!("unsettle on a non-settled agent")
        };
        self.settled_at[ctx.node().index()] = NO_SETTLER;
        self.settled_count -= 1;
        ctx.wake(settler);
        parent_port
    }

    /// Settle the smallest rider at the current node — or the leader itself
    /// when the group is exhausted, in which case `true` is returned.
    fn settle_next(
        &mut self,
        ctx: &mut ActivationCtx<'_>,
        leader: AgentId,
        arrival_pin: Option<Port>,
    ) -> bool {
        match self.riders.pop() {
            None => {
                self.settle(ctx, leader, arrival_pin);
                true
            }
            Some(chosen) => {
                ctx.extract(chosen);
                self.settle(ctx, chosen, arrival_pin);
                false
            }
        }
    }

    fn insert_rider(&mut self, a: AgentId) {
        // Keep `riders` sorted descending by id (pop() = smallest).
        let id = self.ids[a.index()];
        let pos = self.riders.partition_point(|r| self.ids[r.index()] > id);
        self.riders.insert(pos, a);
    }

    fn insert_idle_guest(&mut self, a: AgentId) {
        let id = self.ids[a.index()];
        let pos = self
            .idle_guests
            .partition_point(|g| self.ids[g.index()] < id);
        self.idle_guests.insert(pos, a);
    }

    // ------------------------------------------------------------------
    // Leader
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn act_leader(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Leader {
            phase,
            mut arrival_pin,
            mut checked,
            mut next_empty,
            mut solo_pin,
        } = self.states[agent.index()]
        else {
            unreachable!("act_leader on non-leader");
        };
        let mut phase = phase;

        match phase {
            LeaderPhase::Enroll => {
                for i in 0..self.k as u32 {
                    if AgentId(i) != agent {
                        ctx.enroll(AgentId(i));
                    }
                }
                phase = LeaderPhase::Decide;
            }

            LeaderPhase::Decide => {
                if self.settler_here(ctx).is_none() {
                    // Start node: settle the smallest follower (or the leader
                    // itself if it is alone).
                    if self.settle_next(ctx, agent, arrival_pin) {
                        return;
                    }
                } else {
                    // Begin a fresh Async_Probe invocation at this node.
                    checked = 0;
                    next_empty = None;
                    self.probe_invocations += 1;
                    self.current_probe_iterations = 0;
                    phase = LeaderPhase::ProbeAssign;
                }
            }

            LeaderPhase::ProbeAssign => {
                if next_empty.is_some() || checked as usize >= ctx.degree() {
                    phase = if self.idle_guests.is_empty() {
                        // Settler is present; falls through to movement.
                        LeaderPhase::SeeOffWaitSettler
                    } else {
                        LeaderPhase::SeeOffAssign
                    };
                } else {
                    self.current_probe_iterations += 1;
                    self.max_probe_iterations =
                        self.max_probe_iterations.max(self.current_probe_iterations);
                    let avail = self.idle_guests.len() + self.riders.len();
                    if avail == 0 {
                        // The leader is the only unsettled agent left at this
                        // node: probe the next port itself.
                        let port = Port(checked + 1);
                        if let Some(pin) = try_move(ctx, port) {
                            solo_pin = Some(pin);
                            phase = LeaderPhase::SoloOut;
                        }
                    } else {
                        // Assign the `want` smallest-id helpers from the
                        // union of idle guests and riders.
                        let want = (ctx.degree() - checked as usize).min(avail);
                        let mut guests_taken = 0usize;
                        for i in 0..want {
                            let port = Port(checked + 1 + i as u32);
                            let next_guest = self.idle_guests.get(guests_taken).copied();
                            let next_rider = self.riders.last().copied();
                            let take_guest = match (next_guest, next_rider) {
                                (Some(g), Some(r)) => self.ids[g.index()] < self.ids[r.index()],
                                (Some(_), None) => true,
                                (None, _) => false,
                            };
                            let (helper, origin) = if take_guest {
                                let g = next_guest.expect("guest available");
                                guests_taken += 1;
                                let AgentState::Guest {
                                    saved_parent_port,
                                    travel: GuestTravel::Idle { home_port },
                                } = self.states[g.index()]
                                else {
                                    unreachable!("idle_guests holds only idle guests")
                                };
                                ctx.wake(g);
                                (
                                    g,
                                    ProberOrigin::Guest {
                                        home_port,
                                        saved_parent_port,
                                    },
                                )
                            } else {
                                let r = self.riders.pop().expect("rider available");
                                ctx.extract(r);
                                (r, ProberOrigin::Follower)
                            };
                            self.states[helper.index()] = AgentState::Prober {
                                origin,
                                port,
                                pin: None,
                                stage: ProbeStage::Out,
                            };
                        }
                        self.idle_guests.drain(0..guests_taken);
                        checked += want as u32;
                        phase = LeaderPhase::ProbeWait {
                            assigned: want as u32,
                        };
                    }
                }
            }

            LeaderPhase::ProbeWait { assigned } => {
                if self.returned_probers.len() as u32 == assigned {
                    // Collect reports, revert probers.
                    let probers = std::mem::take(&mut self.returned_probers);
                    for prober in probers {
                        let AgentState::Prober {
                            origin,
                            port,
                            stage: ProbeStage::Returned { found_settler },
                            ..
                        } = self.states[prober.index()]
                        else {
                            unreachable!("returned_probers holds only returned probers")
                        };
                        if !found_settler {
                            next_empty = Some(match next_empty {
                                Some(p) if p < port => p,
                                _ => port,
                            });
                        }
                        match origin {
                            ProberOrigin::Follower => {
                                self.states[prober.index()] = AgentState::Rider;
                                ctx.enroll(prober);
                                self.insert_rider(prober);
                            }
                            ProberOrigin::Guest {
                                home_port,
                                saved_parent_port,
                            } => {
                                self.states[prober.index()] = AgentState::Guest {
                                    saved_parent_port,
                                    travel: GuestTravel::Idle { home_port },
                                };
                                ctx.park(prober);
                                self.insert_idle_guest(prober);
                            }
                        }
                    }
                    phase = LeaderPhase::ProbeAssign;
                }
            }

            LeaderPhase::SoloOut => {
                // Arrived at the solo-probed neighbor.
                phase = LeaderPhase::SoloAtNeighbor;
            }

            LeaderPhase::SoloAtNeighbor => {
                if let Some(settler) = self.settler_here(ctx) {
                    let parent_port = self.unsettle(ctx, settler);
                    self.states[settler.index()] = AgentState::Guest {
                        saved_parent_port: parent_port,
                        travel: GuestTravel::ToProbeSite {
                            via: solo_pin.expect("solo pin recorded"),
                        },
                    };
                    phase = LeaderPhase::SoloWaitGuestGone { recruited: settler };
                } else {
                    let pin = solo_pin.expect("solo pin recorded");
                    if try_move(ctx, pin).is_some() {
                        phase = LeaderPhase::SoloReturn {
                            found_settler: false,
                        };
                    }
                }
            }

            LeaderPhase::SoloWaitGuestGone { recruited } => {
                if !ctx.colocated_iter().any(|peer| peer == recruited) {
                    let pin = solo_pin.expect("solo pin recorded");
                    if try_move(ctx, pin).is_some() {
                        phase = LeaderPhase::SoloReturn {
                            found_settler: true,
                        };
                    }
                }
            }

            LeaderPhase::SoloReturn { found_settler } => {
                // Back at the DFS node.
                if !found_settler {
                    next_empty = Some(Port(checked + 1));
                }
                checked += 1;
                solo_pin = None;
                phase = LeaderPhase::ProbeAssign;
            }

            LeaderPhase::SeeOffAssign => {
                let x = self.idle_guests.len();
                match x {
                    0 => {
                        phase = self.movement(
                            ctx,
                            next_empty,
                            &mut arrival_pin,
                            LeaderPhase::SeeOffAssign,
                        );
                    }
                    1 => {
                        // α(w) escorts the single leftover guest home.
                        let guest = self.idle_guests[0];
                        let settler = self
                            .settler_here(ctx)
                            .expect("probe node must have a settler");
                        let AgentState::Guest {
                            saved_parent_port,
                            travel: GuestTravel::Idle { home_port },
                        } = self.states[guest.index()]
                        else {
                            unreachable!()
                        };
                        let settler_parent = self.unsettle(ctx, settler);
                        self.states[guest.index()] = AgentState::Guest {
                            saved_parent_port,
                            travel: GuestTravel::GoingHome { via: home_port },
                        };
                        ctx.wake(guest);
                        self.states[settler.index()] = AgentState::Escort {
                            guest_self: None,
                            saved_parent_port: settler_parent,
                            via: home_port,
                            pin: None,
                            stage: EscortStage::Going,
                        };
                        self.idle_guests.clear();
                        phase = LeaderPhase::SeeOffWaitSettler;
                    }
                    x => {
                        let pairs = x / 2;
                        let guests = std::mem::take(&mut self.idle_guests);
                        for i in 0..pairs {
                            let a = guests[2 * i];
                            let b = guests[2 * i + 1];
                            let AgentState::Guest {
                                saved_parent_port: a_parent,
                                travel: GuestTravel::Idle { home_port: a_home },
                            } = self.states[a.index()]
                            else {
                                unreachable!()
                            };
                            let AgentState::Guest {
                                saved_parent_port: b_parent,
                                travel: GuestTravel::Idle { home_port: b_home },
                            } = self.states[b.index()]
                            else {
                                unreachable!()
                            };
                            self.states[a.index()] = AgentState::Guest {
                                saved_parent_port: a_parent,
                                travel: GuestTravel::GoingHome { via: a_home },
                            };
                            ctx.wake(a);
                            self.states[b.index()] = AgentState::Escort {
                                guest_self: Some((b_home, b_parent)),
                                saved_parent_port: a_parent,
                                via: a_home,
                                pin: None,
                                stage: EscortStage::Going,
                            };
                            ctx.wake(b);
                        }
                        // An odd leftover guest stays idle (and parked).
                        if x % 2 == 1 {
                            self.idle_guests.push(guests[x - 1]);
                        }
                        phase = LeaderPhase::SeeOffWait {
                            expect_idle: (x - pairs) as u32,
                        };
                    }
                }
            }

            LeaderPhase::SeeOffWait { expect_idle } => {
                if self.idle_guests.len() as u32 == expect_idle {
                    phase = LeaderPhase::SeeOffAssign;
                }
            }

            LeaderPhase::SeeOffWaitSettler => {
                if self.settler_here(ctx).is_some() {
                    phase = self.movement(
                        ctx,
                        next_empty,
                        &mut arrival_pin,
                        LeaderPhase::SeeOffWaitSettler,
                    );
                }
            }

            LeaderPhase::ArriveForward => {
                debug_assert!(
                    self.settler_here(ctx).is_none(),
                    "forward target must be fully unsettled"
                );
                if self.settle_next(ctx, agent, arrival_pin) {
                    return;
                }
                phase = LeaderPhase::Decide;
            }
        }

        self.states[agent.index()] = AgentState::Leader {
            phase,
            arrival_pin,
            checked,
            next_empty,
            solo_pin,
        };
    }

    /// Execute the DFS move (forward to the discovered unsettled neighbor, or
    /// backtrack to the parent) — the whole cohort rides along. When the
    /// dynamic adversary has the edge down, the group stays put and the
    /// leader remains in `stay`, retrying on its next activation.
    fn movement(
        &mut self,
        ctx: &mut ActivationCtx<'_>,
        next_empty: Option<Port>,
        arrival_pin: &mut Option<Port>,
        stay: LeaderPhase,
    ) -> LeaderPhase {
        let (p, arrived) = match next_empty {
            Some(p) => (p, LeaderPhase::ArriveForward),
            None => {
                let settler = self
                    .settler_here(ctx)
                    .expect("backtracking from a settled node");
                let AgentState::Settled { parent_port } = self.states[settler.index()] else {
                    unreachable!()
                };
                let p =
                    parent_port.expect("DFS root can only be exhausted after every agent settled");
                (p, LeaderPhase::Decide)
            }
        };
        match ctx.try_move_cohort_via(p) {
            Ok(pin) => {
                *arrival_pin = Some(pin);
                arrived
            }
            Err(MoveError::EdgeDown { .. }) => stay,
            Err(e) => panic!("illegal probe-dfs cohort move: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn act_prober(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Prober {
            origin,
            port,
            mut pin,
            stage,
        } = self.states[agent.index()]
        else {
            unreachable!()
        };
        let mut stage = stage;
        match stage {
            ProbeStage::Out => {
                if let Some(p) = try_move(ctx, port) {
                    pin = Some(p);
                    stage = ProbeStage::AtNeighbor;
                }
            }
            ProbeStage::AtNeighbor => {
                if let Some(settler) = self.settler_here(ctx) {
                    let parent_port = self.unsettle(ctx, settler);
                    self.states[settler.index()] = AgentState::Guest {
                        saved_parent_port: parent_port,
                        travel: GuestTravel::ToProbeSite {
                            via: pin.expect("pin recorded on the way out"),
                        },
                    };
                    stage = ProbeStage::WaitGuestGone { recruited: settler };
                } else {
                    stage = ProbeStage::GoHome {
                        found_settler: false,
                    };
                }
            }
            ProbeStage::WaitGuestGone { recruited } => {
                if !ctx.colocated_iter().any(|peer| peer == recruited) {
                    stage = ProbeStage::GoHome {
                        found_settler: true,
                    };
                }
            }
            ProbeStage::GoHome { found_settler } => {
                if try_move(ctx, pin.expect("pin recorded on the way out")).is_some() {
                    stage = ProbeStage::Returned { found_settler };
                    self.returned_probers.push(agent);
                    ctx.park(agent);
                }
            }
            ProbeStage::Returned { .. } => {}
        }
        self.states[agent.index()] = AgentState::Prober {
            origin,
            port,
            pin,
            stage,
        };
    }

    fn act_guest(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Guest {
            saved_parent_port,
            travel,
        } = self.states[agent.index()]
        else {
            unreachable!()
        };
        match travel {
            GuestTravel::ToProbeSite { via } => {
                let Some(pin) = try_move(ctx, via) else {
                    return;
                };
                self.states[agent.index()] = AgentState::Guest {
                    saved_parent_port,
                    travel: GuestTravel::Idle { home_port: pin },
                };
                self.insert_idle_guest(agent);
                ctx.park(agent);
            }
            GuestTravel::Idle { .. } => {}
            GuestTravel::GoingHome { via } => {
                if try_move(ctx, via).is_none() {
                    return;
                }
                self.states[agent.index()] = AgentState::Settled {
                    parent_port: saved_parent_port,
                };
                self.settled_at[ctx.node().index()] = agent.0;
                self.settled_count += 1;
                ctx.park(agent);
            }
        }
    }

    fn act_escort(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        let AgentState::Escort {
            guest_self,
            saved_parent_port,
            via,
            mut pin,
            stage,
        } = self.states[agent.index()]
        else {
            unreachable!()
        };
        let mut stage = stage;
        match stage {
            EscortStage::Going => {
                if let Some(p) = try_move(ctx, via) {
                    pin = Some(p);
                    stage = EscortStage::AtPartnerHome;
                }
            }
            EscortStage::AtPartnerHome => {
                // Wait until the partner guest has arrived and re-settled.
                if self.settler_here(ctx).is_some()
                    && try_move(ctx, pin.expect("pin recorded on the way out")).is_some()
                {
                    stage = EscortStage::Returned;
                }
            }
            EscortStage::Returned => {
                // Restore.
                match guest_self {
                    None => {
                        self.states[agent.index()] = AgentState::Settled {
                            parent_port: saved_parent_port,
                        };
                        self.settled_at[ctx.node().index()] = agent.0;
                        self.settled_count += 1;
                        ctx.park(agent);
                    }
                    Some((home_port, my_parent)) => {
                        self.states[agent.index()] = AgentState::Guest {
                            saved_parent_port: my_parent,
                            travel: GuestTravel::Idle { home_port },
                        };
                        self.insert_idle_guest(agent);
                        ctx.park(agent);
                    }
                }
                return;
            }
        }
        self.states[agent.index()] = AgentState::Escort {
            guest_self,
            saved_parent_port,
            via,
            pin,
            stage,
        };
    }
}

impl AgentProtocol for ProbeDfs {
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
        match self.states[agent.index()] {
            AgentState::Settled { .. } | AgentState::Rider => {}
            AgentState::Leader { .. } => self.act_leader(agent, ctx),
            AgentState::Prober { .. } => self.act_prober(agent, ctx),
            AgentState::Guest { .. } => self.act_guest(agent, ctx),
            AgentState::Escort { .. } => self.act_escort(agent, ctx),
        }
    }

    fn is_terminated(&self) -> bool {
        self.settled_count == self.k
    }

    fn is_settled(&self, agent: AgentId) -> bool {
        matches!(self.states[agent.index()], AgentState::Settled { .. })
    }

    fn memory_bits(&self, agent: AgentId) -> usize {
        let id = bits::id_bits(self.k);
        let port = bits::port_bits(self.max_degree);
        let opt_port = bits::opt_port_bits(self.max_degree);
        match &self.states[agent.index()] {
            AgentState::Rider => id + 1,
            AgentState::Prober { .. } => id + 3 + port + opt_port + 1 + id + 2 * opt_port,
            AgentState::Guest { .. } => id + 2 + opt_port + port,
            AgentState::Escort { .. } => id + 2 + 2 * opt_port + port + opt_port,
            AgentState::Settled { .. } => id + opt_port,
            AgentState::Leader { .. } => {
                id + 4
                    + bits::counter_bits(self.k as u64)
                    + 1
                    + port
                    + 2 * opt_port
                    + bits::counter_bits(self.max_degree as u64)
                    + opt_port
                    + opt_port
            }
        }
    }

    fn name(&self) -> &'static str {
        "probe-dfs"
    }
}
