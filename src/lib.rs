//! # dispersion
//!
//! Facade crate for the reproduction of *"Dispersion is (Almost) Optimal
//! under (A)synchrony"* (SPAA 2025). It re-exports the workspace crates and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! * [`graph`] — anonymous, port-labeled graphs and generators.
//! * [`sim`] — the mobile-agent execution engine (SYNC rounds, ASYNC
//!   adversaries, epoch accounting, metrics, placement families).
//! * [`core`] — the dispersion algorithms (paper + baselines),
//!   verification and the scenario API (registry + canonical run
//!   descriptions).
//! * [`analysis`] — experiment sweeps, scaling fits, report generation.
//!
//! ```
//! use dispersion::prelude::*;
//!
//! // Scatter 20 agents across a random tree and disperse them
//! // asynchronously — one canonical, round-trippable description.
//! let spec = ScenarioSpec::new(GraphFamily::RandomTree, 20, "ks-dfs")
//!     .with_placement(Placement::ScatteredUniform)
//!     .with_schedule(Schedule::AsyncRandom { prob: 0.7, seed: 0 });
//! assert_eq!(spec.label(), "rtree/k20/scatter/async-rand0.7/ks-dfs");
//! let report = spec.run(&Registry::builtin(), 42).unwrap();
//! assert!(report.dispersed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use disp_analysis as analysis;
pub use disp_core as core;
pub use disp_graph as graph;
pub use disp_sim as sim;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use disp_analysis::{loglog_fit, markdown_table, Summary};
    pub use disp_core::prelude::*;
    pub use disp_core::rooted_sync::SyncConfig;
    pub use disp_core::verify;
    pub use disp_graph::generators::GraphFamily;
    pub use disp_graph::prelude::*;
    pub use disp_sim::prelude::*;
}
