//! # dispersion
//!
//! Facade crate for the reproduction of *"Dispersion is (Almost) Optimal
//! under (A)synchrony"* (SPAA 2025). It re-exports the workspace crates and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! * [`graph`] — anonymous, port-labeled graphs and generators.
//! * [`sim`] — the mobile-agent execution engine (SYNC rounds, ASYNC
//!   adversaries, epoch accounting, metrics).
//! * [`core`] — the dispersion algorithms (paper + baselines), verification
//!   and the uniform runner.
//! * [`analysis`] — experiment sweeps, scaling fits, report generation.
//!
//! ```
//! use dispersion::prelude::*;
//!
//! // Disperse 20 agents from one corner of a random tree, asynchronously.
//! let graph = generators::random_tree(20, 42);
//! let spec = RunSpec {
//!     algorithm: Algorithm::ProbeDfs,
//!     schedule: Schedule::AsyncRandom { prob: 0.7, seed: 1 },
//!     ..RunSpec::default()
//! };
//! let report = run_rooted(&graph, 20, NodeId(0), &spec).unwrap();
//! assert!(report.dispersed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use disp_analysis as analysis;
pub use disp_core as core;
pub use disp_graph as graph;
pub use disp_sim as sim;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use disp_analysis::{loglog_fit, markdown_table, Summary};
    pub use disp_core::prelude::*;
    pub use disp_core::rooted_sync::SyncConfig;
    pub use disp_core::runner::{run, run_rooted, Algorithm, RunReport, RunSpec, Schedule};
    pub use disp_core::verify;
    pub use disp_graph::prelude::*;
    pub use disp_sim::prelude::*;
}
