//! A tour of the scenario API: one algorithm driven through every placement
//! family × every schedule family via canonical `ScenarioSpec`s — the same
//! descriptions the campaign CLI accepts as `--scenario` labels.
//!
//! ```text
//! cargo run --example scenario_tour
//! ```

use dispersion::prelude::*;

fn main() {
    let registry = Registry::builtin();
    let k = 48;

    let schedules = [
        Schedule::Sync,
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.7, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 4,
            seed: 0,
        },
    ];

    println!(
        "{:<44} {:>8} {:>9} {:>10}",
        "scenario (canonical label)", "time", "moves", "dispersed"
    );
    for placement in Placement::all() {
        for schedule in schedules {
            // ks-dfs is the general-configuration algorithm: the only
            // builtin that accepts every placement under every schedule.
            // Half occupancy (n ≈ 2k) keeps non-rooted starts non-trivial —
            // at k = n a scattered start is already dispersed.
            let spec = ScenarioSpec::new(GraphFamily::Grid, k, "ks-dfs")
                .with_occupancy(0.5)
                .with_placement(placement)
                .with_schedule(schedule);
            let label = spec.label();

            // The label IS the scenario: it parses back to the same spec,
            // which is what lets campaign stores and CLIs speak it.
            assert_eq!(ScenarioSpec::parse(&label, &registry).unwrap(), spec);

            let report = spec.run(&registry, 11).expect("tour run");
            println!(
                "{label:<44} {:>8} {:>9} {:>10}",
                report.outcome.time(),
                report.outcome.total_moves,
                report.dispersed
            );
        }
    }

    // Illegal combinations are typed errors, not silent misbehavior: the
    // paper's rooted algorithms refuse non-rooted starts...
    let err = ScenarioSpec::new(GraphFamily::Grid, k, "probe-dfs")
        .with_placement(Placement::ScatteredUniform)
        .run(&registry, 1)
        .unwrap_err();
    println!("\nprobe-dfs + scatter  -> {err}");
    // ...and the SYNC-only algorithm refuses asynchronous schedules.
    let err = ScenarioSpec::new(GraphFamily::Grid, k, "sync-seeker")
        .with_schedule(Schedule::AsyncRoundRobin)
        .run(&registry, 1)
        .unwrap_err();
    println!("sync-seeker + async  -> {err}");
}
