//! Quickstart: disperse `k` agents from a single node of a random tree under
//! both schedulers and print the measured costs.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dispersion::prelude::*;

fn main() {
    let k = 64;
    let graph = generators::random_tree(k, 7);
    println!(
        "graph: {} ({} nodes, {} edges, max degree {})",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Synchronous run of the seeker-probing algorithm (Theorem 6.1 family).
    let sync = run_rooted(
        &graph,
        k,
        NodeId(0),
        &RunSpec {
            algorithm: Algorithm::SyncSeeker,
            schedule: Schedule::Sync,
            ..RunSpec::default()
        },
    )
    .expect("sync run");
    println!(
        "SYNC  seeker probing : {:>6} rounds, {:>7} moves, {:>3} bits/agent, dispersed: {}",
        sync.outcome.rounds,
        sync.outcome.total_moves,
        sync.outcome.peak_memory_bits,
        sync.dispersed
    );

    // Asynchronous run of the doubling-probe algorithm (Theorem 7.1).
    let asy = run_rooted(
        &graph,
        k,
        NodeId(0),
        &RunSpec {
            algorithm: Algorithm::ProbeDfs,
            schedule: Schedule::AsyncRandom { prob: 0.7, seed: 3 },
            ..RunSpec::default()
        },
    )
    .expect("async run");
    println!(
        "ASYNC doubling probe : {:>6} epochs, {:>7} moves, {:>3} bits/agent, dispersed: {}",
        asy.outcome.epochs, asy.outcome.total_moves, asy.outcome.peak_memory_bits, asy.dispersed
    );

    // The OPODIS'21 baseline for comparison.
    let base = run_rooted(
        &graph,
        k,
        NodeId(0),
        &RunSpec {
            algorithm: Algorithm::KsDfs,
            schedule: Schedule::AsyncRandom { prob: 0.7, seed: 3 },
            ..RunSpec::default()
        },
    )
    .expect("baseline run");
    println!(
        "ASYNC scan baseline  : {:>6} epochs, {:>7} moves, {:>3} bits/agent, dispersed: {}",
        base.outcome.epochs,
        base.outcome.total_moves,
        base.outcome.peak_memory_bits,
        base.dispersed
    );
}
