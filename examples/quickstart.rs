//! Quickstart: disperse `k` agents from a single node of a random tree under
//! both schedulers and print the measured costs.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dispersion::prelude::*;

fn main() {
    let k = 64;
    let registry = Registry::builtin();

    // One canonical description per run; the graph (a random tree with k
    // nodes) is instantiated from the run seed.
    let runs = [
        (
            "SYNC  seeker probing ",
            ScenarioSpec::new(GraphFamily::RandomTree, k, "sync-seeker"),
        ),
        (
            "ASYNC doubling probe ",
            ScenarioSpec::new(GraphFamily::RandomTree, k, "probe-dfs")
                .with_schedule(Schedule::AsyncRandom { prob: 0.7, seed: 0 }),
        ),
        (
            "ASYNC scan baseline  ",
            ScenarioSpec::new(GraphFamily::RandomTree, k, "ks-dfs")
                .with_schedule(Schedule::AsyncRandom { prob: 0.7, seed: 0 }),
        ),
    ];

    for (label, spec) in runs {
        let report = spec.run(&registry, 7).expect("run");
        println!(
            "{label}: {:>6} {}, {:>7} moves, {:>3} bits/agent, dispersed: {}   [{}]",
            report.outcome.time(),
            if spec.schedule.is_async() {
                "epochs"
            } else {
                "rounds"
            },
            report.outcome.total_moves,
            report.outcome.peak_memory_bits,
            report.dispersed,
            report.scenario
        );
    }
}
