//! Electric-vehicle relocation: the paper's motivating scenario of
//! self-driven cars (agents) spreading out to distinct charging stations
//! (nodes). A fleet parked at one depot of a city-grid road network must end
//! with one car per station, using only local port labels.
//!
//! ```text
//! cargo run --example ev_charging
//! ```

use dispersion::prelude::*;

fn main() {
    // A 12x12 city grid (144 stations) carrying a fleet of 100 cars:
    // occupancy 0.7 makes the scenario instantiate ≈ k/0.7 stations.
    let registry = Registry::builtin();
    let fleet = 100;
    let depot = |algorithm: &str| {
        ScenarioSpec::new(GraphFamily::Grid, fleet, algorithm).with_occupancy(0.7)
    };

    let runs = [
        ("synchronized fleet (SYNC)", depot("sync-seeker")),
        (
            "uncoordinated fleet (ASYNC, lagging)",
            depot("probe-dfs").with_schedule(Schedule::AsyncLagging {
                max_lag: 5,
                seed: 0,
            }),
        ),
        (
            "OPODIS'21 baseline (ASYNC, lagging)",
            depot("ks-dfs").with_schedule(Schedule::AsyncLagging {
                max_lag: 5,
                seed: 0,
            }),
        ),
    ];

    for (label, spec) in runs {
        let report = spec.run(&registry, 9).expect("relocation run");
        println!(
            "{label:38} -> {:>6} {}  | {:>7} car-moves | every car at its own station: {}",
            report.outcome.time(),
            if spec.schedule.is_async() {
                "epochs"
            } else {
                "rounds"
            },
            report.outcome.total_moves,
            report.dispersed
        );
    }
}
