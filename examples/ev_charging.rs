//! Electric-vehicle relocation: the paper's motivating scenario of
//! self-driven cars (agents) spreading out to distinct charging stations
//! (nodes). A fleet parked at one depot of a city-grid road network must end
//! with one car per station, using only local port labels.
//!
//! ```text
//! cargo run --example ev_charging
//! ```

use dispersion::prelude::*;

fn main() {
    // A 12x12 city grid: 144 stations; a fleet of 100 cars at the depot
    // (corner node 0).
    let grid = generators::grid2d(12, 12);
    let fleet = 100;

    for (label, schedule) in [
        ("synchronized fleet (SYNC)", Schedule::Sync),
        (
            "uncoordinated fleet (ASYNC, lagging)",
            Schedule::AsyncLagging {
                max_lag: 5,
                seed: 9,
            },
        ),
    ] {
        let algorithm = if matches!(schedule, Schedule::Sync) {
            Algorithm::SyncSeeker
        } else {
            Algorithm::ProbeDfs
        };
        let report = run_rooted(
            &grid,
            fleet,
            NodeId(0),
            &RunSpec {
                algorithm,
                schedule,
                ..RunSpec::default()
            },
        )
        .expect("relocation run");
        println!(
            "{label:38} -> {:>6} {}  | {:>7} car-moves | every car at its own station: {}",
            report.outcome.time(),
            if matches!(schedule, Schedule::Sync) {
                "rounds"
            } else {
                "epochs"
            },
            report.outcome.total_moves,
            report.dispersed
        );
    }

    // Compare against the pre-paper state of the art on the same instance.
    let baseline = run_rooted(
        &grid,
        fleet,
        NodeId(0),
        &RunSpec {
            algorithm: Algorithm::KsDfs,
            schedule: Schedule::AsyncLagging {
                max_lag: 5,
                seed: 9,
            },
            ..RunSpec::default()
        },
    )
    .expect("baseline run");
    println!(
        "OPODIS'21 baseline (ASYNC, lagging)    -> {:>6} epochs | {:>7} car-moves | dispersed: {}",
        baseline.outcome.epochs, baseline.outcome.total_moves, baseline.dispersed
    );
}
