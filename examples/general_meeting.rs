//! General initial configurations: several groups start on different nodes,
//! their DFS territories collide in the middle of the graph, and the final
//! configuration must still be a valid dispersion. Hand-crafted starts that
//! no placement family covers go through the scenario API's
//! custom-positions escape hatch ([`run_custom`]).
//!
//! ```text
//! cargo run --example general_meeting
//! ```

use dispersion::prelude::*;

fn main() {
    // Two dense camps at both ends of a barbell graph plus stragglers on the
    // bridge: the camps' DFS territories must interleave on the narrow path.
    let graph = generators::barbell(12, 20);
    let n = graph.num_nodes();
    let mut positions = Vec::new();
    for _ in 0..14 {
        positions.push(NodeId(0)); // left clique camp
    }
    for _ in 0..14 {
        positions.push(NodeId((n - 1) as u32)); // right clique camp
    }
    for i in 0..6 {
        positions.push(NodeId((12 + 3 * i) as u32)); // stragglers on the bridge
    }

    println!(
        "barbell graph: {} nodes, {} edges; {} agents in {} groups",
        n,
        graph.num_edges(),
        positions.len(),
        3
    );

    let registry = Registry::builtin();
    let factory = registry.get("ks-dfs").expect("registered");
    for (label, schedule) in [
        ("SYNC", Schedule::Sync),
        (
            "ASYNC (random)",
            Schedule::AsyncRandom { prob: 0.6, seed: 0 },
        ),
    ] {
        let (outcome, dispersed) = run_custom(
            factory,
            &Params::new(),
            graph.clone(),
            positions.clone(),
            schedule,
            Limits::default(),
            8,
        )
        .expect("run");
        println!(
            "{label:<16} {:>6} {}  | {:>6} moves | dispersed: {}",
            outcome.time(),
            if schedule.is_async() {
                "epochs"
            } else {
                "rounds"
            },
            outcome.total_moves,
            dispersed
        );
    }

    println!("\nGeneral configurations use the scan-based algorithm with the documented");
    println!("scatter fallback instead of the paper's full subsumption machinery — see");
    println!("DESIGN.md section 3 for the fidelity discussion.");
}
