//! Load balancing view of dispersion: work items (agents) created at a few
//! hot nodes of a cluster interconnect (here a hypercube) must end up on
//! distinct machines. Clustered starts are a first-class placement family,
//! so the whole workload is one canonical scenario.
//!
//! ```text
//! cargo run --example load_balancing
//! ```

use dispersion::prelude::*;

fn main() {
    let registry = Registry::builtin();

    // 96 work items created at 3 seeded hot spots of a 128-machine
    // hypercube (occupancy 0.75 → the scenario instantiates 128 nodes).
    let spec = ScenarioSpec::new(GraphFamily::Hypercube, 96, "ks-dfs")
        .with_occupancy(0.75)
        .with_placement(Placement::Clustered { clusters: 3 });
    println!("scenario: {}", spec.label());

    let report = spec.run(&registry, 4).expect("balancing run");
    println!(
        "balanced in {} rounds with {} item migrations; one item per machine: {}",
        report.outcome.rounds, report.outcome.total_moves, report.dispersed
    );
    println!(
        "peak coordination state per item: {} bits (O(log(k + degree)))",
        report.outcome.peak_memory_bits
    );

    // Same workload under asynchrony — one builder call away.
    let async_spec = spec.with_schedule(Schedule::AsyncRandom { prob: 0.6, seed: 0 });
    let async_report = async_spec.run(&registry, 4).expect("async balancing run");
    println!(
        "under asynchrony: {} epochs ({} scheduler steps), dispersed: {}",
        async_report.outcome.epochs, async_report.outcome.steps, async_report.dispersed
    );
}
