//! Load balancing view of dispersion: work items (agents) created at a few
//! hot nodes of a cluster interconnect (here a hypercube) must end up on
//! distinct machines. General (non-rooted) initial configurations are
//! handled by the scan-based algorithm with the scatter fallback.
//!
//! ```text
//! cargo run --example load_balancing
//! ```

use dispersion::prelude::*;

fn main() {
    let graph = generators::hypercube(7); // 128 machines, degree 7
    let n = graph.num_nodes();

    // 96 work items created at 3 hot spots.
    let hot_spots = [NodeId(0), NodeId(21), NodeId(100)];
    let positions: Vec<NodeId> = (0..96).map(|i| hot_spots[i % hot_spots.len()]).collect();

    let report = run(
        &graph,
        positions.clone(),
        &RunSpec {
            algorithm: Algorithm::KsDfs,
            schedule: Schedule::Sync,
            ..RunSpec::default()
        },
    )
    .expect("balancing run");

    println!(
        "hypercube with {n} machines, {} work items from {} hot spots",
        positions.len(),
        hot_spots.len()
    );
    println!(
        "balanced in {} rounds with {} item migrations; one item per machine: {}",
        report.outcome.rounds, report.outcome.total_moves, report.dispersed
    );
    println!(
        "peak coordination state per item: {} bits (O(log(k + degree)))",
        report.outcome.peak_memory_bits
    );

    // Same workload under asynchrony.
    let async_report = run(
        &graph,
        positions,
        &RunSpec {
            algorithm: Algorithm::KsDfs,
            schedule: Schedule::AsyncRandom { prob: 0.6, seed: 4 },
            ..RunSpec::default()
        },
    )
    .expect("async balancing run");
    println!(
        "under asynchrony: {} epochs ({} scheduler steps), dispersed: {}",
        async_report.outcome.epochs, async_report.outcome.steps, async_report.dispersed
    );
}
