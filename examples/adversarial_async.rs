//! How much does the adversary matter? Run the asynchronous doubling-probe
//! algorithm (Theorem 7.1) under increasingly hostile activation schedules
//! and report epochs, steps and moves. Each schedule is one canonical
//! scenario label away.
//!
//! ```text
//! cargo run --example adversarial_async
//! ```

use dispersion::prelude::*;

fn main() {
    let registry = Registry::builtin();
    let k = 80;
    println!("Erdős–Rényi graph (avg degree 6) with k = {k} agents rooted at node 0\n");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10}",
        "schedule", "epochs", "steps", "moves", "dispersed"
    );

    let schedules = vec![
        ("async round-robin", Schedule::AsyncRoundRobin),
        (
            "async random p=0.9",
            Schedule::AsyncRandom { prob: 0.9, seed: 0 },
        ),
        (
            "async random p=0.5",
            Schedule::AsyncRandom { prob: 0.5, seed: 0 },
        ),
        (
            "async random p=0.2",
            Schedule::AsyncRandom { prob: 0.2, seed: 0 },
        ),
        (
            "async lagging ≤4",
            Schedule::AsyncLagging {
                max_lag: 4,
                seed: 0,
            },
        ),
        (
            "async lagging ≤16",
            Schedule::AsyncLagging {
                max_lag: 16,
                seed: 0,
            },
        ),
        ("async targeted ≤4", Schedule::AsyncTargeted { max_lag: 4 }),
        (
            "async targeted ≤16",
            Schedule::AsyncTargeted { max_lag: 16 },
        ),
    ];

    for (label, schedule) in schedules {
        let spec = ScenarioSpec::new(GraphFamily::ErdosRenyi { avg_degree: 6.0 }, k, "probe-dfs")
            .with_schedule(schedule);
        let report = spec.run(&registry, 13).expect("run");
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10}",
            label,
            report.outcome.epochs,
            report.outcome.steps,
            report.outcome.total_moves,
            report.dispersed
        );
    }

    println!("\nEpoch counts stay in the same O(k log k) envelope regardless of the");
    println!("adversary — the paper's point that the probing technique is not");
    println!("inherently tied to synchrony.");
}
