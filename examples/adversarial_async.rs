//! How much does the adversary matter? Run the asynchronous doubling-probe
//! algorithm (Theorem 7.1) under increasingly hostile activation schedules
//! and report epochs, steps and moves.
//!
//! ```text
//! cargo run --example adversarial_async
//! ```

use dispersion::prelude::*;

fn main() {
    let k = 80;
    let graph = generators::erdos_renyi_connected(k, 6.0 / k as f64, 13);
    println!(
        "graph: {} nodes, {} edges, max degree {}; k = {k} agents rooted at node 0\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10}",
        "schedule", "epochs", "steps", "moves", "dispersed"
    );

    let schedules = vec![
        ("async round-robin", Schedule::AsyncRoundRobin),
        (
            "async random p=0.9",
            Schedule::AsyncRandom { prob: 0.9, seed: 1 },
        ),
        (
            "async random p=0.5",
            Schedule::AsyncRandom { prob: 0.5, seed: 1 },
        ),
        (
            "async random p=0.2",
            Schedule::AsyncRandom { prob: 0.2, seed: 1 },
        ),
        (
            "async lagging ≤4",
            Schedule::AsyncLagging {
                max_lag: 4,
                seed: 1,
            },
        ),
        (
            "async lagging ≤16",
            Schedule::AsyncLagging {
                max_lag: 16,
                seed: 1,
            },
        ),
    ];

    for (label, schedule) in schedules {
        let report = run_rooted(
            &graph,
            k,
            NodeId(0),
            &RunSpec {
                algorithm: Algorithm::ProbeDfs,
                schedule,
                ..RunSpec::default()
            },
        )
        .expect("run");
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10}",
            label,
            report.outcome.epochs,
            report.outcome.steps,
            report.outcome.total_moves,
            report.dispersed
        );
    }

    println!("\nEpoch counts stay in the same O(k log k) envelope regardless of the");
    println!("adversary — the paper's point that the probing technique is not");
    println!("inherently tied to synchrony.");
}
